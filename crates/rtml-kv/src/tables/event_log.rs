//! The event log: append-only, per-(node, component) streams of
//! [`Event`]s, spread across control-plane shards.
//!
//! The paper keeps event logs in the centralized control plane precisely
//! so that profiling and debugging tools (R7) can reconstruct a global
//! timeline without touching the data path. Appends go to a key derived
//! from the emitting node and component, so high-rate logging scales with
//! the shard count like every other control-plane write.

use std::sync::Arc;

use bytes::Bytes;

use rtml_common::codec::{decode_from_slice, encode_to_bytes};
use rtml_common::event::{Component, Event};
use rtml_common::ids::NodeId;

use crate::store::KvStore;

const PREFIX: &[u8] = b"ev:";

/// Typed event-log handle.
#[derive(Clone)]
pub struct EventLog {
    kv: Arc<KvStore>,
    enabled: bool,
}

impl EventLog {
    /// Creates an enabled event log over `kv`.
    pub fn new(kv: Arc<KvStore>) -> Self {
        EventLog { kv, enabled: true }
    }

    /// Creates a disabled log: appends become no-ops. Used by benchmarks
    /// that want to exclude logging cost from a measurement.
    pub fn disabled(kv: Arc<KvStore>) -> Self {
        EventLog { kv, enabled: false }
    }

    /// Whether appends are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn key(node: NodeId, component: Component) -> Bytes {
        let mut v = Vec::with_capacity(PREFIX.len() + 5);
        v.extend_from_slice(PREFIX);
        v.extend_from_slice(&node.0.to_le_bytes());
        v.push(match component {
            Component::Driver => 0,
            Component::Worker => 1,
            Component::LocalScheduler => 2,
            Component::GlobalScheduler => 3,
            Component::ObjectStore => 4,
            Component::Supervisor => 5,
        });
        Bytes::from(v)
    }

    /// Appends an event attributed to `node`.
    pub fn append(&self, node: NodeId, event: Event) {
        if !self.enabled {
            return;
        }
        self.kv
            .append(Self::key(node, event.component), encode_to_bytes(&event));
    }

    /// Reads all events from one (node, component) stream, in append
    /// order.
    pub fn read(&self, node: NodeId, component: Component) -> Vec<Event> {
        self.kv
            .read_log(&Self::key(node, component))
            .iter()
            .filter_map(|b| decode_from_slice(b).ok())
            .collect()
    }

    /// Reads every event in the system, sorted by timestamp. Tooling path.
    pub fn read_all(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .kv
            .scan_logs_prefix(PREFIX)
            .into_iter()
            .flat_map(|(_k, records)| records)
            .filter_map(|b| decode_from_slice(&b).ok())
            .collect();
        events.sort_by_key(|e| e.at_nanos);
        events
    }

    /// Total number of events recorded.
    pub fn len(&self) -> usize {
        self.kv
            .scan_logs_prefix(PREFIX)
            .iter()
            .map(|(_k, records)| records.len())
            .sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::event::EventKind;
    use rtml_common::ids::{DriverId, TaskId};

    fn ev(component: Component, nanos: u64) -> Event {
        let root = TaskId::driver_root(DriverId::from_index(0));
        Event {
            at_nanos: nanos,
            component,
            kind: EventKind::TaskSubmitted {
                task: root.child(nanos),
            },
        }
    }

    #[test]
    fn append_and_read_per_stream() {
        let kv = KvStore::new(4);
        let log = EventLog::new(kv);
        log.append(NodeId(0), ev(Component::Worker, 1));
        log.append(NodeId(0), ev(Component::Worker, 2));
        log.append(NodeId(1), ev(Component::Worker, 3));
        let events = log.read(NodeId(0), Component::Worker);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_nanos, 1);
        assert_eq!(log.read(NodeId(1), Component::Worker).len(), 1);
        assert!(log.read(NodeId(2), Component::Worker).is_empty());
    }

    #[test]
    fn read_all_sorts_by_time() {
        let kv = KvStore::new(4);
        let log = EventLog::new(kv);
        log.append(NodeId(1), ev(Component::LocalScheduler, 30));
        log.append(NodeId(0), ev(Component::Worker, 10));
        log.append(NodeId(2), ev(Component::GlobalScheduler, 20));
        let all = log.read_all();
        assert_eq!(all.len(), 3);
        let times: Vec<u64> = all.iter().map(|e| e.at_nanos).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn disabled_log_drops_appends() {
        let kv = KvStore::new(4);
        let log = EventLog::disabled(kv);
        assert!(!log.is_enabled());
        log.append(NodeId(0), ev(Component::Worker, 1));
        assert!(log.is_empty());
    }
}
