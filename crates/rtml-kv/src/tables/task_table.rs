//! The task table: task ID → immutable spec (the lineage record) and a
//! separately-keyed mutable state.
//!
//! Storing the spec durably at submission time is the heart of the paper's
//! fault-tolerance story: any finished-or-lost task can be re-executed
//! from its spec alone, and the spec's argument list carries the lineage
//! edges to *its* inputs, recursively.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use rtml_common::codec::{decode_from_slice, encode_to_bytes};
use rtml_common::ids::TaskId;
use rtml_common::task::{TaskSpec, TaskState};

use crate::segment::{self, SegmentIndex};
use crate::store::KvStore;

const SPEC_PREFIX: &[u8] = b"tspec:";
const STATE_PREFIX: &[u8] = b"tstate:";

/// Typed task-table handle.
#[derive(Clone)]
pub struct TaskTable {
    kv: Arc<KvStore>,
    /// Lazily built index over the append-only spec segments that
    /// [`TaskTable::record_many`] commits. Clones share it; independent
    /// handles over the same kv each converge to the same entries
    /// (segments are immutable), so a fresh handle is a valid recovery
    /// path.
    segments: Arc<SegmentIndex>,
}

impl TaskTable {
    /// Creates a handle over `kv`.
    pub fn new(kv: Arc<KvStore>) -> Self {
        TaskTable {
            kv,
            segments: Arc::new(SegmentIndex::new()),
        }
    }

    fn spec_key(task: TaskId) -> Bytes {
        super::id_key(SPEC_PREFIX, task.unique())
    }

    fn state_key(task: TaskId) -> Bytes {
        super::id_key(STATE_PREFIX, task.unique())
    }

    /// Durably records a task spec (idempotent: reconstruction re-puts the
    /// same spec, modulo the attempt counter which we do update).
    pub fn put_spec(&self, spec: &TaskSpec) {
        self.kv
            .set(Self::spec_key(spec.task_id), encode_to_bytes(spec));
    }

    /// Reads a task spec. The explicit point key (a resubmission's
    /// attempt-bumped re-put) shadows the segment-committed copy.
    pub fn get_spec(&self, task: TaskId) -> Option<TaskSpec> {
        if let Some(bytes) = self.kv.get(&Self::spec_key(task)) {
            return decode_from_slice(&bytes).ok();
        }
        self.segments.lookup(&self.kv, task)
    }

    /// Group-commits a batch of task submissions: every spec is recorded
    /// durably as **one append-only segment** — a single shard-lock
    /// acquisition for the whole batch, not a per-entry insert — then
    /// every task transitions to `state`. The segment append completes
    /// before any state becomes visible, preserving the "durable lineage
    /// first" submission invariant, and its atomicity means concurrent
    /// readers see the whole batch's specs or none. The per-task-id
    /// index over segments is built lazily (first `get_spec` miss or
    /// recovery scan), so ingest pays nothing for it.
    ///
    /// When `state` is [`TaskState::Submitted`] the state phase is
    /// skipped entirely: a task with a durable spec and no state record
    /// *is* `Submitted` by definition, and every state reader in this
    /// table synthesizes that. One lock per batch instead of two writes
    /// per task is what lets the driver-side hot path clear a million
    /// records per second.
    pub fn record_many(&self, specs: &[TaskSpec], state: &TaskState) {
        if specs.is_empty() {
            return;
        }
        segment::commit(&self.kv, specs);
        if matches!(state, TaskState::Submitted) {
            return;
        }
        let encoded = encode_to_bytes(state);
        let keys = super::id_keys_arena(STATE_PREFIX, specs.iter().map(|s| s.task_id.unique()));
        self.kv
            .set_many(keys.into_iter().map(|key| (key, encoded.clone())).collect());
    }

    /// Transitions a task's state; notifies state subscribers.
    pub fn set_state(&self, task: TaskId, state: &TaskState) {
        self.kv.set(Self::state_key(task), encode_to_bytes(state));
    }

    /// Transitions many tasks to the same state with one group-committed
    /// write (the batch-ingest path in the local scheduler).
    pub fn set_states_many(&self, tasks: &[TaskId], state: &TaskState) {
        let encoded = encode_to_bytes(state);
        let keys = super::id_keys_arena(STATE_PREFIX, tasks.iter().map(|t| t.unique()));
        self.kv
            .set_many(keys.into_iter().map(|key| (key, encoded.clone())).collect());
    }

    /// Batched state reads (positional). The batch-submission replay
    /// check uses this so a batch costs one lock per shard, not one per
    /// task.
    ///
    /// A task with a durable spec but no state record yet reads as
    /// [`TaskState::Submitted`] — the submit fast path records only the
    /// spec, so "spec exists, no explicit state" *means* submitted.
    pub fn get_states_many(&self, tasks: &[TaskId]) -> Vec<Option<TaskState>> {
        let keys = super::id_keys_arena(STATE_PREFIX, tasks.iter().map(|t| t.unique()));
        let mut out: Vec<Option<TaskState>> = self
            .kv
            .get_many(&keys)
            .into_iter()
            .map(|bytes| bytes.and_then(|b| decode_from_slice(&b).ok()))
            .collect();
        let missing: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if !missing.is_empty() {
            let spec_keys: Vec<Bytes> = missing.iter().map(|&i| Self::spec_key(tasks[i])).collect();
            for (&i, spec) in missing.iter().zip(self.kv.get_many(&spec_keys)) {
                if spec.is_some() {
                    out[i] = Some(TaskState::Submitted);
                }
            }
            let unresolved: Vec<usize> =
                missing.into_iter().filter(|&i| out[i].is_none()).collect();
            if !unresolved.is_empty() {
                let ids: Vec<TaskId> = unresolved.iter().map(|&i| tasks[i]).collect();
                for (&i, hit) in unresolved
                    .iter()
                    .zip(self.segments.contains_many(&self.kv, &ids))
                {
                    if hit {
                        out[i] = Some(TaskState::Submitted);
                    }
                }
            }
        }
        out
    }

    /// Reads a task's state. A task with a durable spec and no state
    /// record is `Submitted` (see [`TaskTable::get_states_many`]).
    pub fn get_state(&self, task: TaskId) -> Option<TaskState> {
        if let Some(bytes) = self.kv.get(&Self::state_key(task)) {
            return decode_from_slice(&bytes).ok();
        }
        if self.kv.get(&Self::spec_key(task)).is_some() || self.segments.contains(&self.kv, task) {
            return Some(TaskState::Submitted);
        }
        None
    }

    /// Subscribes to state transitions: current state plus update stream.
    /// The current state synthesizes implicit `Submitted` like
    /// [`TaskTable::get_state`]; the stream carries explicit transitions.
    pub fn subscribe_state(&self, task: TaskId) -> (Option<TaskState>, TaskStateStream) {
        let (cur, rx) = self.kv.subscribe(Self::state_key(task));
        let current = cur.and_then(|b| decode_from_slice(&b).ok()).or_else(|| {
            (self.kv.get(&Self::spec_key(task)).is_some() || self.segments.contains(&self.kv, task))
                .then_some(TaskState::Submitted)
        });
        (current, TaskStateStream { rx })
    }

    /// Scans every task's current state. Recovery/tooling path (full
    /// scan); the data path never calls this. Tasks whose only record is
    /// their spec (the submit fast path writes no explicit state) are
    /// reported as `Submitted`, so failure repair sees the
    /// submitted-but-never-queued window.
    pub fn scan_states(&self) -> Vec<(TaskId, TaskState)> {
        let mut out: Vec<(TaskId, TaskState)> = self
            .kv
            .scan_prefix(STATE_PREFIX)
            .into_iter()
            .filter_map(|(k, v)| {
                let id = super::parse_id_key(STATE_PREFIX, &k)?;
                let state = decode_from_slice::<TaskState>(&v).ok()?;
                Some((TaskId::from_unique(id), state))
            })
            .collect();
        let mut seen: std::collections::HashSet<TaskId> =
            out.iter().map(|(task, _)| *task).collect();
        for (k, _v) in self.kv.scan_prefix(SPEC_PREFIX) {
            if let Some(id) = super::parse_id_key(SPEC_PREFIX, &k) {
                let task = TaskId::from_unique(id);
                if seen.insert(task) {
                    out.push((task, TaskState::Submitted));
                }
            }
        }
        for task in self.segments.task_ids(&self.kv) {
            if seen.insert(task) {
                out.push((task, TaskState::Submitted));
            }
        }
        out
    }

    /// Counts tasks currently recorded in each lifecycle state. Tooling
    /// path (full scan) for the debugging requirement R7.
    pub fn state_census(&self) -> TaskCensus {
        let mut census = TaskCensus::default();
        for (_task, state) in self.scan_states() {
            match state {
                TaskState::Submitted => census.submitted += 1,
                TaskState::Queued(_) => census.queued += 1,
                TaskState::Spilled => census.spilled += 1,
                TaskState::Running(_) => census.running += 1,
                TaskState::Finished => census.finished += 1,
                TaskState::Failed(_) => census.failed += 1,
                TaskState::Lost => census.lost += 1,
            }
        }
        census
    }
}

/// Counts of tasks per lifecycle state (R7 debugging view).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskCensus {
    /// Tasks submitted but not yet queued anywhere.
    pub submitted: usize,
    /// Tasks in some local scheduler's queues.
    pub queued: usize,
    /// Tasks waiting at the global scheduler.
    pub spilled: usize,
    /// Tasks currently executing.
    pub running: usize,
    /// Tasks completed successfully.
    pub finished: usize,
    /// Tasks that raised application errors.
    pub failed: usize,
    /// Tasks lost to failures and eligible for reconstruction.
    pub lost: usize,
}

impl TaskCensus {
    /// Total tasks observed.
    pub fn total(&self) -> usize {
        self.submitted
            + self.queued
            + self.spilled
            + self.running
            + self.finished
            + self.failed
            + self.lost
    }
}

/// A decoded subscription stream of [`TaskState`] transitions.
pub struct TaskStateStream {
    rx: Receiver<Bytes>,
}

impl TaskStateStream {
    /// Blocks until the next transition or `timeout`.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<TaskState> {
        loop {
            match self.rx.recv_timeout(timeout) {
                Ok(bytes) => {
                    if let Ok(state) = decode_from_slice(&bytes) {
                        return Some(state);
                    }
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::ids::{DriverId, FunctionId, NodeId, WorkerId};
    use std::time::Duration;

    fn spec() -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        TaskSpec::simple(root.child(0), FunctionId::from_name("f"), vec![])
    }

    #[test]
    fn spec_round_trips() {
        let kv = KvStore::new(2);
        let table = TaskTable::new(kv);
        let s = spec();
        table.put_spec(&s);
        assert_eq!(table.get_spec(s.task_id), Some(s.clone()));
        assert!(table.get_spec(s.task_id.child(9)).is_none());
    }

    #[test]
    fn state_transitions_and_subscription() {
        let kv = KvStore::new(2);
        let table = TaskTable::new(kv);
        let s = spec();
        table.set_state(s.task_id, &TaskState::Submitted);
        let (cur, stream) = table.subscribe_state(s.task_id);
        assert_eq!(cur, Some(TaskState::Submitted));

        let t2 = table.clone();
        let id = s.task_id;
        std::thread::spawn(move || {
            t2.set_state(id, &TaskState::Running(WorkerId::new(NodeId(0), 1)));
            t2.set_state(id, &TaskState::Finished);
        });
        assert_eq!(
            stream.recv_timeout(Duration::from_secs(5)),
            Some(TaskState::Running(WorkerId::new(NodeId(0), 1)))
        );
        assert_eq!(
            stream.recv_timeout(Duration::from_secs(5)),
            Some(TaskState::Finished)
        );
    }

    #[test]
    fn record_many_commits_specs_and_states() {
        let kv = KvStore::new(4);
        let table = TaskTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(0));
        let specs: Vec<TaskSpec> = (0..10)
            .map(|i| TaskSpec::simple(root.child(i), FunctionId::from_name("f"), vec![]))
            .collect();
        table.record_many(&specs, &TaskState::Submitted);
        for spec in &specs {
            assert_eq!(table.get_spec(spec.task_id), Some(spec.clone()));
            assert_eq!(table.get_state(spec.task_id), Some(TaskState::Submitted));
        }
        let ids: Vec<TaskId> = specs.iter().map(|s| s.task_id).collect();
        table.set_states_many(&ids, &TaskState::Queued(NodeId(1)));
        let states = table.get_states_many(&ids);
        assert!(states
            .iter()
            .all(|s| *s == Some(TaskState::Queued(NodeId(1)))));
        // Unknown tasks read back as None, positionally.
        let mixed = table.get_states_many(&[ids[0], root.child(999)]);
        assert_eq!(mixed[0], Some(TaskState::Queued(NodeId(1))));
        assert_eq!(mixed[1], None);
    }

    #[test]
    fn census_counts_states() {
        let kv = KvStore::new(2);
        let table = TaskTable::new(kv);
        let root = TaskId::driver_root(DriverId::from_index(1));
        table.set_state(root.child(0), &TaskState::Finished);
        table.set_state(root.child(1), &TaskState::Finished);
        table.set_state(root.child(2), &TaskState::Lost);
        let census = table.state_census();
        assert_eq!(census.finished, 2);
        assert_eq!(census.lost, 1);
        assert_eq!(census.total(), 3);
    }
}
