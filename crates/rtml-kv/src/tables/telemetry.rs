//! The telemetry table: per-node bounded rings of metric snapshots.
//!
//! This is the time-series half of the observability plane (paper R7:
//! profiling tools attached to the centralized control state). Each node
//! runs a sampler that reads its `MetricsRegistry` on a period and
//! group-commits the whole snapshot here as **one record on one key** —
//! one shard lock acquisition per node per sampling interval, so the
//! sensing plane costs the control plane a few locks per second per
//! node regardless of how many metrics are registered.
//!
//! Every stream is a ring bounded by the table's retention, so a
//! long-running cluster holds a sliding window of recent samples — the
//! substrate an adaptive controller (ROADMAP item 4) can close loops
//! over — without unbounded control-plane memory.

use std::sync::Arc;

use bytes::Bytes;

use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec, Reader, Writer};
use rtml_common::ids::NodeId;

use crate::store::KvStore;

const PREFIX: &[u8] = b"tel:";

/// One sampler snapshot: every registered metric at one instant.
///
/// `samples` is name-sorted and shape-stable across records from one
/// node (the registry guarantees it), so consecutive records line up
/// column-wise into a time-series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// Capture time, nanoseconds since the cluster epoch.
    pub at_nanos: u64,
    /// Flat name-sorted `(metric, value)` pairs.
    pub samples: Vec<(String, u64)>,
}

impl Codec for TelemetryRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.at_nanos);
        self.samples.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> rtml_common::error::Result<Self> {
        Ok(TelemetryRecord {
            at_nanos: r.take_varint()?,
            samples: Vec::<(String, u64)>::decode(r)?,
        })
    }
}

/// Typed handle over the per-node telemetry rings.
#[derive(Clone)]
pub struct TelemetryTable {
    kv: Arc<KvStore>,
    /// Maximum records kept per node stream (ring-buffer style).
    retention: usize,
}

impl TelemetryTable {
    /// Default per-node ring capacity: at the default 10ms sampling
    /// interval this holds the trailing ~10 seconds.
    pub const DEFAULT_RETENTION: usize = 1024;

    /// Creates a table with the default retention.
    pub fn new(kv: Arc<KvStore>) -> Self {
        Self::with_retention(kv, Self::DEFAULT_RETENTION)
    }

    /// Creates a table bounding each node's ring to `retention` records
    /// (minimum 1).
    pub fn with_retention(kv: Arc<KvStore>, retention: usize) -> Self {
        TelemetryTable {
            kv,
            retention: retention.max(1),
        }
    }

    /// The per-node ring capacity.
    pub fn retention(&self) -> usize {
        self.retention
    }

    fn key(node: NodeId) -> Bytes {
        let mut v = Vec::with_capacity(PREFIX.len() + 4);
        v.extend_from_slice(PREFIX);
        v.extend_from_slice(&node.0.to_le_bytes());
        Bytes::from(v)
    }

    /// Group-commits one snapshot onto `node`'s ring (one shard lock);
    /// returns how many old records the ring evicted to stay bounded.
    pub fn append(&self, node: NodeId, record: &TelemetryRecord) -> usize {
        self.kv
            .append_many(
                Self::key(node),
                vec![encode_to_bytes(record)],
                Some(self.retention),
            )
            .len()
    }

    /// Reads `node`'s ring, oldest first.
    pub fn read(&self, node: NodeId) -> Vec<TelemetryRecord> {
        self.kv
            .read_log(&Self::key(node))
            .iter()
            .filter_map(|b| decode_from_slice::<TelemetryRecord>(b).ok())
            .collect()
    }

    /// Reads every node's ring (tooling path), sorted by node id.
    pub fn read_all(&self) -> Vec<(NodeId, Vec<TelemetryRecord>)> {
        let mut out: Vec<(NodeId, Vec<TelemetryRecord>)> = self
            .kv
            .scan_logs_prefix(PREFIX)
            .into_iter()
            .filter_map(|(key, records)| {
                let suffix = key.strip_prefix(PREFIX)?;
                let bytes: [u8; 4] = suffix.try_into().ok()?;
                let node = NodeId(u32::from_le_bytes(bytes));
                let series = records
                    .iter()
                    .filter_map(|b| decode_from_slice::<TelemetryRecord>(b).ok())
                    .collect();
                Some((node, series))
            })
            .collect();
        out.sort_by_key(|(node, _)| node.0);
        out
    }

    /// Total records across all node rings.
    pub fn len(&self) -> usize {
        self.kv
            .scan_logs_prefix(PREFIX)
            .iter()
            .map(|(_, records)| records.len())
            .sum()
    }

    /// Whether no snapshots have been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: u64, v: u64) -> TelemetryRecord {
        TelemetryRecord {
            at_nanos: at,
            samples: vec![("a.count".into(), v), ("b.p50".into(), v * 2)],
        }
    }

    #[test]
    fn record_round_trips() {
        let r = record(42, 7);
        let bytes = encode_to_bytes(&r);
        assert_eq!(decode_from_slice::<TelemetryRecord>(&bytes).unwrap(), r);
        let empty = TelemetryRecord {
            at_nanos: 0,
            samples: vec![],
        };
        let bytes = encode_to_bytes(&empty);
        assert_eq!(decode_from_slice::<TelemetryRecord>(&bytes).unwrap(), empty);
    }

    #[test]
    fn append_and_read_per_node() {
        let kv = KvStore::new(4);
        let table = TelemetryTable::new(kv);
        table.append(NodeId(1), &record(10, 1));
        table.append(NodeId(1), &record(20, 2));
        table.append(NodeId(2), &record(15, 3));
        let series = table.read(NodeId(1));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].at_nanos, 10);
        assert_eq!(series[1].samples[0].1, 2);
        assert!(table.read(NodeId(9)).is_empty());
        let all = table.read_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, NodeId(1));
        assert_eq!(all[1].0, NodeId(2));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn ring_stays_bounded_and_keeps_newest() {
        let kv = KvStore::new(4);
        let table = TelemetryTable::with_retention(kv, 4);
        assert_eq!(table.retention(), 4);
        let mut evicted = 0;
        for i in 0..10u64 {
            evicted += table.append(NodeId(0), &record(i, i));
        }
        assert_eq!(evicted, 6);
        let series = table.read(NodeId(0));
        assert_eq!(series.len(), 4);
        let times: Vec<u64> = series.iter().map(|r| r.at_nanos).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }
}
