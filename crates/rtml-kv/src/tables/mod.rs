//! Typed views over the control-plane store — the tables of Figure 3.
//!
//! Each table is a thin wrapper that owns an `Arc<KvStore>`, encodes its
//! records with the `rtml-common` codec, and namespaces its keys with a
//! one-byte-ish prefix. All tables on one store share the same shards, so
//! control-plane load from objects, tasks, and events spreads uniformly.

pub mod event_log;
pub mod function_table;
pub mod object_table;
pub mod task_table;

use bytes::Bytes;
use rtml_common::ids::UniqueId;

/// Builds a namespaced key: `prefix ++ id_bytes`.
pub(crate) fn id_key(prefix: &[u8], id: UniqueId) -> Bytes {
    let mut v = Vec::with_capacity(prefix.len() + 16);
    v.extend_from_slice(prefix);
    v.extend_from_slice(&id.as_u128().to_le_bytes());
    Bytes::from(v)
}

/// Inverse of [`id_key`]: recovers the ID from a namespaced key.
pub(crate) fn parse_id_key(prefix: &[u8], key: &[u8]) -> Option<UniqueId> {
    let suffix = key.strip_prefix(prefix)?;
    let bytes: [u8; 16] = suffix.try_into().ok()?;
    Some(UniqueId::from_u128(u128::from_le_bytes(bytes)))
}
