//! Typed views over the control-plane store — the tables of Figure 3.
//!
//! Each table is a thin wrapper that owns an `Arc<KvStore>`, encodes its
//! records with the `rtml-common` codec, and namespaces its keys with a
//! one-byte-ish prefix. All tables on one store share the same shards, so
//! control-plane load from objects, tasks, and events spreads uniformly.

pub mod event_log;
pub mod function_table;
pub mod load_digest;
pub mod object_table;
pub mod task_table;
pub mod telemetry;

use bytes::Bytes;
use rtml_common::ids::UniqueId;

/// Builds a namespaced key: `prefix ++ id_bytes`.
pub(crate) fn id_key(prefix: &[u8], id: UniqueId) -> Bytes {
    debug_assert!(prefix.len() <= 8, "table prefix too long for stack key");
    let mut buf = [0u8; 24];
    buf[..prefix.len()].copy_from_slice(prefix);
    buf[prefix.len()..prefix.len() + 16].copy_from_slice(&id.as_u128().to_le_bytes());
    Bytes::copy_from_slice(&buf[..prefix.len() + 16])
}

/// Builds a batch of namespaced keys carved out of **one** arena
/// allocation: `Bytes` has no inline representation, so [`id_key`] costs
/// one heap allocation per key — at batch 4096 that is the dominant
/// key-construction cost on the submission hot path. The arena form
/// allocates once and hands out reference-counted slices; the keys stay
/// alive exactly as long as the map entries that own them, and since the
/// arena consists of nothing but those keys, no dead bytes are pinned.
pub(crate) fn id_keys_arena(prefix: &[u8], ids: impl Iterator<Item = UniqueId>) -> Vec<Bytes> {
    let stride = prefix.len() + 16;
    let mut buf = Vec::new();
    for id in ids {
        buf.extend_from_slice(prefix);
        buf.extend_from_slice(&id.as_u128().to_le_bytes());
    }
    let count = buf.len() / stride;
    let arena = Bytes::from(buf);
    (0..count)
        .map(|i| arena.slice(i * stride..(i + 1) * stride))
        .collect()
}

/// Inverse of [`id_key`]: recovers the ID from a namespaced key.
pub(crate) fn parse_id_key(prefix: &[u8], key: &[u8]) -> Option<UniqueId> {
    let suffix = key.strip_prefix(prefix)?;
    let bytes: [u8; 16] = suffix.try_into().ok()?;
    Some(UniqueId::from_u128(u128::from_le_bytes(bytes)))
}
