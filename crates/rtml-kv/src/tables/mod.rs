//! Typed views over the control-plane store — the tables of Figure 3.
//!
//! Each table is a thin wrapper that owns an `Arc<KvStore>`, encodes its
//! records with the `rtml-common` codec, and namespaces its keys with a
//! one-byte-ish prefix. All tables on one store share the same shards, so
//! control-plane load from objects, tasks, and events spreads uniformly.

pub mod event_log;
pub mod function_table;
pub mod object_table;
pub mod task_table;

use bytes::Bytes;
use rtml_common::ids::UniqueId;

/// Builds a namespaced key: `prefix ++ id_bytes`. Assembled on the
/// stack — with prefixes of at most 8 bytes the key fits `Bytes`'
/// inline representation, making key construction allocation-free on
/// the submission hot path.
pub(crate) fn id_key(prefix: &[u8], id: UniqueId) -> Bytes {
    debug_assert!(prefix.len() <= 8, "table prefix too long for stack key");
    let mut buf = [0u8; 24];
    buf[..prefix.len()].copy_from_slice(prefix);
    buf[prefix.len()..prefix.len() + 16].copy_from_slice(&id.as_u128().to_le_bytes());
    Bytes::copy_from_slice(&buf[..prefix.len() + 16])
}

/// Inverse of [`id_key`]: recovers the ID from a namespaced key.
pub(crate) fn parse_id_key(prefix: &[u8], key: &[u8]) -> Option<UniqueId> {
    let suffix = key.strip_prefix(prefix)?;
    let bytes: [u8; 16] = suffix.try_into().ok()?;
    Some(UniqueId::from_u128(u128::from_le_bytes(bytes)))
}
