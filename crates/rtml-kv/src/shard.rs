//! A single control-plane shard: a mutex-protected map plus subscriber
//! registry and append-only logs.
//!
//! Shards are independent; the [`crate::store::KvStore`] façade routes
//! each key to one shard by hash. All operations on one shard are
//! linearizable (they execute under the shard lock); operations on
//! different shards are concurrent — this is precisely the scaling story
//! of the paper's §3.2.1.

use std::collections::HashMap;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use rtml_common::metrics::Counter;

/// Interior state of one shard.
#[derive(Default)]
struct ShardState {
    /// Point values.
    map: HashMap<Bytes, Bytes>,
    /// Append-only logs, kept separate from point values so that appends
    /// do not rewrite history.
    logs: HashMap<Bytes, Vec<Bytes>>,
    /// Per-key subscriber channels. Senders that fail (receiver dropped)
    /// are pruned on the next notification.
    subs: HashMap<Bytes, Vec<Sender<Bytes>>>,
}

/// One independent shard of the control plane.
#[derive(Default)]
pub struct Shard {
    state: Mutex<ShardState>,
    /// Operations served (reads + writes), for throughput experiments.
    pub ops: Counter,
}

impl Shard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Shard::default()
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.ops.inc();
        self.state.lock().map.get(key).cloned()
    }

    /// Point write; notifies subscribers with the new value.
    pub fn set(&self, key: Bytes, value: Bytes) {
        self.ops.inc();
        let mut st = self.state.lock();
        st.map.insert(key.clone(), value.clone());
        Self::notify(&mut st, &key, &value);
    }

    /// Writes only if the key is vacant. Returns whether the write
    /// happened.
    pub fn set_if_absent(&self, key: Bytes, value: Bytes) -> bool {
        self.ops.inc();
        let mut st = self.state.lock();
        if st.map.contains_key(&key) {
            return false;
        }
        st.map.insert(key.clone(), value.clone());
        Self::notify(&mut st, &key, &value);
        true
    }

    /// Atomic read-modify-write. `f` maps the current value (if any) to
    /// the new value; returning `None` deletes the key. Returns the value
    /// after the update. Subscribers are notified when the value changes
    /// or is first created (deletes do not notify).
    pub fn update<F>(&self, key: Bytes, f: F) -> Option<Bytes>
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        self.ops.inc();
        let mut st = self.state.lock();
        let current = st.map.get(&key);
        match f(current) {
            Some(new) => {
                st.map.insert(key.clone(), new.clone());
                Self::notify(&mut st, &key, &new);
                Some(new)
            }
            None => {
                st.map.remove(&key);
                None
            }
        }
    }

    /// Deletes a key. Returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.ops.inc();
        self.state.lock().map.remove(key).is_some()
    }

    /// Appends a record to the log at `key`; notifies subscribers with the
    /// record.
    pub fn append(&self, key: Bytes, record: Bytes) {
        self.ops.inc();
        let mut st = self.state.lock();
        st.logs.entry(key.clone()).or_default().push(record.clone());
        Self::notify(&mut st, &key, &record);
    }

    /// Reads the full log at `key`.
    pub fn read_log(&self, key: &[u8]) -> Vec<Bytes> {
        self.ops.inc();
        self.state.lock().logs.get(key).cloned().unwrap_or_default()
    }

    /// Length of the log at `key`.
    pub fn log_len(&self, key: &[u8]) -> usize {
        self.state.lock().logs.get(key).map_or(0, Vec::len)
    }

    /// Subscribes to a key: returns the current point value and a channel
    /// of subsequent notifications, atomically with respect to writers —
    /// a writer cannot slip between the read and the registration.
    pub fn subscribe(&self, key: Bytes) -> (Option<Bytes>, Receiver<Bytes>) {
        self.ops.inc();
        let (tx, rx) = unbounded();
        let mut st = self.state.lock();
        let current = st.map.get(&key).cloned();
        st.subs.entry(key).or_default().push(tx);
        (current, rx)
    }

    /// Point values whose keys start with `prefix`. Linear scan — intended
    /// for offline tooling (profilers, debuggers), not the data path.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.ops.inc();
        self.state
            .lock()
            .map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Logs whose keys start with `prefix`, concatenated per key.
    pub fn scan_logs_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Vec<Bytes>)> {
        self.ops.inc();
        self.state
            .lock()
            .logs
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of point keys stored.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the shard holds no point keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the entire shard contents (for replication / snapshots).
    pub fn snapshot(&self) -> (Vec<(Bytes, Bytes)>, Vec<(Bytes, Vec<Bytes>)>) {
        let st = self.state.lock();
        (
            st.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            st.logs
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        )
    }

    /// Restores shard contents from a snapshot, dropping existing state.
    pub fn restore(&self, map: Vec<(Bytes, Bytes)>, logs: Vec<(Bytes, Vec<Bytes>)>) {
        let mut st = self.state.lock();
        st.map = map.into_iter().collect();
        st.logs = logs.into_iter().collect();
    }

    fn notify(st: &mut ShardState, key: &Bytes, value: &Bytes) {
        if let Some(senders) = st.subs.get_mut(key) {
            senders.retain(|tx| tx.send(value.clone()).is_ok());
            if senders.is_empty() {
                st.subs.remove(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn get_set_delete() {
        let s = Shard::new();
        assert_eq!(s.get(b"k".as_ref()), None);
        s.set(b("k"), b("v"));
        assert_eq!(s.get(b"k".as_ref()), Some(b("v")));
        assert!(s.delete(b"k".as_ref()));
        assert!(!s.delete(b"k".as_ref()));
        assert_eq!(s.get(b"k".as_ref()), None);
    }

    #[test]
    fn set_if_absent_only_once() {
        let s = Shard::new();
        assert!(s.set_if_absent(b("k"), b("a")));
        assert!(!s.set_if_absent(b("k"), b("b")));
        assert_eq!(s.get(b"k".as_ref()), Some(b("a")));
    }

    #[test]
    fn update_read_modify_write() {
        let s = Shard::new();
        s.set(b("n"), Bytes::from(vec![1]));
        let new = s.update(b("n"), |cur| {
            let mut v = cur.unwrap().to_vec();
            v[0] += 1;
            Some(Bytes::from(v))
        });
        assert_eq!(new, Some(Bytes::from(vec![2])));
        // Returning None deletes.
        assert_eq!(s.update(b("n"), |_| None), None);
        assert_eq!(s.get(b"n".as_ref()), None);
    }

    #[test]
    fn subscribe_sees_current_then_updates() {
        let s = Shard::new();
        s.set(b("k"), b("v0"));
        let (cur, rx) = s.subscribe(b("k"));
        assert_eq!(cur, Some(b("v0")));
        s.set(b("k"), b("v1"));
        s.set(b("k"), b("v2"));
        assert_eq!(rx.recv().unwrap(), b("v1"));
        assert_eq!(rx.recv().unwrap(), b("v2"));
    }

    #[test]
    fn subscribe_before_create() {
        let s = Shard::new();
        let (cur, rx) = s.subscribe(b("later"));
        assert_eq!(cur, None);
        s.set(b("later"), b("v"));
        assert_eq!(rx.recv().unwrap(), b("v"));
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let s = Shard::new();
        let (_cur, rx) = s.subscribe(b("k"));
        drop(rx);
        s.set(b("k"), b("v"));
        // A second write must not panic or leak; sender list is cleaned.
        s.set(b("k"), b("v2"));
        assert_eq!(s.state.lock().subs.len(), 0);
    }

    #[test]
    fn logs_append_and_read() {
        let s = Shard::new();
        s.append(b("log"), b("r1"));
        s.append(b("log"), b("r2"));
        assert_eq!(s.read_log(b"log".as_ref()), vec![b("r1"), b("r2")]);
        assert_eq!(s.log_len(b"log".as_ref()), 2);
        assert_eq!(s.read_log(b"other".as_ref()), Vec::<Bytes>::new());
    }

    #[test]
    fn log_appends_notify_subscribers() {
        let s = Shard::new();
        let (_cur, rx) = s.subscribe(b("log"));
        s.append(b("log"), b("rec"));
        assert_eq!(rx.recv().unwrap(), b("rec"));
    }

    #[test]
    fn scan_prefix_filters() {
        let s = Shard::new();
        s.set(b("a:1"), b("x"));
        s.set(b("a:2"), b("y"));
        s.set(b("b:1"), b("z"));
        let mut hits = s.scan_prefix(b"a:");
        hits.sort();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, b("x"));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let s = Shard::new();
        s.set(b("k"), b("v"));
        s.append(b("log"), b("r"));
        let (map, logs) = s.snapshot();
        let t = Shard::new();
        t.restore(map, logs);
        assert_eq!(t.get(b"k".as_ref()), Some(b("v")));
        assert_eq!(t.read_log(b"log".as_ref()), vec![b("r")]);
    }

    #[test]
    fn ops_counter_increments() {
        let s = Shard::new();
        let before = s.ops.get();
        s.set(b("k"), b("v"));
        s.get(b"k".as_ref());
        assert!(s.ops.get() >= before + 2);
    }
}
