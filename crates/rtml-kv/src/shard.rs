//! A single control-plane shard: a mutex-protected map plus subscriber
//! registry and append-only logs.
//!
//! Shards are independent; the [`crate::store::KvStore`] façade routes
//! each key to one shard by hash. All operations on one shard are
//! linearizable (they execute under the shard lock); operations on
//! different shards are concurrent — this is precisely the scaling story
//! of the paper's §3.2.1.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hasher};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use rtml_common::metrics::Counter;

/// FNV-1a/64 over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`]). Shared by shard-interior maps and the façade's
/// shard routing so the two can never drift apart. Control-plane keys
/// are fixed-format identifiers (mostly already-hashed 128-bit ids),
/// not attacker-chosen strings, so trading SipHash's flood resistance
/// for speed is safe here — and every point operation pays this hash
/// several times (routing + map + subscriber lookup), putting it on
/// the submit hot path.
pub(crate) fn fnv1a_64(state: u64, bytes: &[u8]) -> u64 {
    // Folds 8 bytes per multiply instead of the textbook 1: control-plane
    // keys are `prefix + 128-bit already-hashed id`, so every chunk is
    // high-entropy and one multiply mixes plenty for bucket selection —
    // while the hash stays ~8x cheaper on the 22-byte hot-path keys.
    let mut state = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        state ^= u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// FNV-1a/64 offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a_64(self.0, bytes);
    }
}

#[derive(Clone, Default)]
struct FnvBuild;

impl BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(FNV_OFFSET)
    }
}

type FnvMap<V> = HashMap<Bytes, V, FnvBuild>;

/// Interior state of one shard.
#[derive(Default)]
struct ShardState {
    /// Point values.
    map: FnvMap<Bytes>,
    /// Append-only logs, kept separate from point values so that appends
    /// do not rewrite history. Stored as deques so a bounded log can
    /// drop its oldest records in O(1) (ring-buffer retention).
    logs: FnvMap<VecDeque<Bytes>>,
    /// Per-key subscriber channels. Senders that fail (receiver dropped)
    /// are pruned on the next notification.
    subs: FnvMap<Vec<Sender<Bytes>>>,
}

/// One independent shard of the control plane.
#[derive(Default)]
pub struct Shard {
    state: Mutex<ShardState>,
    /// Operations served (reads + writes), for throughput experiments.
    /// A batched call counts once per record it touches.
    pub ops: Counter,
    /// Lock acquisitions performed. The group-commit story in one
    /// number: a batched call acquires the lock once however many
    /// records it carries, so `ops / locks` is the effective commit
    /// batch size.
    pub locks: Counter,
}

impl Shard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Shard::default()
    }

    /// Point read.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.ops.inc();
        self.locks.inc();
        self.state.lock().map.get(key).cloned()
    }

    /// Point write; notifies subscribers with the new value.
    pub fn set(&self, key: Bytes, value: Bytes) {
        self.ops.inc();
        self.locks.inc();
        let mut st = self.state.lock();
        if st.subs.is_empty() {
            st.map.insert(key, value);
        } else {
            st.map.insert(key.clone(), value.clone());
            Self::notify(&mut st, &key, &value);
        }
    }

    /// Group-committed point writes: all entries land (and notify) under
    /// a single lock acquisition. The batch is one linearization point —
    /// readers observe either none or all of it per shard.
    pub fn set_many(&self, entries: Vec<(Bytes, Bytes)>) {
        if entries.is_empty() {
            return;
        }
        self.ops.add(entries.len() as u64);
        self.locks.inc();
        let mut st = self.state.lock();
        // Pre-size for the whole batch: without this a large group commit
        // triggers a rehash-doubling series under the shard lock, which
        // profiling showed dominating the submit hot path.
        st.map.reserve(entries.len());
        if st.subs.is_empty() {
            // No subscriber anywhere on this shard: insert by move — no
            // per-entry refcount traffic, no subscriber lookups. This is
            // the common case for the submit hot path (subscriptions are
            // per blocked `get`/resolver, not per write).
            for (key, value) in entries {
                st.map.insert(key, value);
            }
        } else {
            for (key, value) in entries {
                st.map.insert(key.clone(), value.clone());
                Self::notify(&mut st, &key, &value);
            }
        }
    }

    /// Batched point reads under a single lock acquisition. Results are
    /// positional: `out[i]` corresponds to `keys[i]`.
    pub fn get_many(&self, keys: &[Bytes]) -> Vec<Option<Bytes>> {
        self.ops.add(keys.len() as u64);
        self.locks.inc();
        let st = self.state.lock();
        keys.iter().map(|k| st.map.get(k).cloned()).collect()
    }

    /// Batched read-modify-writes under a single lock acquisition. Each
    /// closure sees the current value of its key; returning `None`
    /// deletes. Semantics per entry match [`Shard::update`].
    pub fn update_many<F>(&self, entries: Vec<(Bytes, F)>)
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        if entries.is_empty() {
            return;
        }
        self.ops.add(entries.len() as u64);
        self.locks.inc();
        let mut st = self.state.lock();
        if st.subs.is_empty() {
            for (key, f) in entries {
                match f(st.map.get(&key)) {
                    Some(new) => {
                        st.map.insert(key, new);
                    }
                    None => {
                        st.map.remove(&key);
                    }
                }
            }
            return;
        }
        for (key, f) in entries {
            let current = st.map.get(&key);
            match f(current) {
                Some(new) => {
                    st.map.insert(key.clone(), new.clone());
                    Self::notify(&mut st, &key, &new);
                }
                None => {
                    st.map.remove(&key);
                }
            }
        }
    }

    /// Writes only if the key is vacant. Returns whether the write
    /// happened.
    pub fn set_if_absent(&self, key: Bytes, value: Bytes) -> bool {
        self.ops.inc();
        self.locks.inc();
        let mut st = self.state.lock();
        if st.map.contains_key(&key) {
            return false;
        }
        st.map.insert(key.clone(), value.clone());
        Self::notify(&mut st, &key, &value);
        true
    }

    /// Atomic read-modify-write. `f` maps the current value (if any) to
    /// the new value; returning `None` deletes the key. Returns the value
    /// after the update. Subscribers are notified when the value changes
    /// or is first created (deletes do not notify).
    pub fn update<F>(&self, key: Bytes, f: F) -> Option<Bytes>
    where
        F: FnOnce(Option<&Bytes>) -> Option<Bytes>,
    {
        self.ops.inc();
        self.locks.inc();
        let mut st = self.state.lock();
        let current = st.map.get(&key);
        match f(current) {
            Some(new) => {
                st.map.insert(key.clone(), new.clone());
                Self::notify(&mut st, &key, &new);
                Some(new)
            }
            None => {
                st.map.remove(&key);
                None
            }
        }
    }

    /// Deletes a key. Returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.ops.inc();
        self.locks.inc();
        self.state.lock().map.remove(key).is_some()
    }

    /// Appends a record to the log at `key`; notifies subscribers with the
    /// record.
    pub fn append(&self, key: Bytes, record: Bytes) {
        self.append_many(key, vec![record], None);
    }

    /// Group-committed log appends: all `records` land on the log at
    /// `key` (and notify) under a single lock acquisition. When
    /// `retention` is set the log behaves as a ring buffer bounded to
    /// that many records; the records dropped from the front to enforce
    /// the cap are returned (popping is O(1) per record).
    pub fn append_many(
        &self,
        key: Bytes,
        records: Vec<Bytes>,
        retention: Option<usize>,
    ) -> Vec<Bytes> {
        if records.is_empty() {
            return Vec::new();
        }
        self.ops.add(records.len() as u64);
        self.locks.inc();
        let mut st = self.state.lock();
        let mut dropped = Vec::new();
        if st.subs.is_empty() {
            // No subscribers: move the records into the log directly.
            let log = st.logs.entry(key).or_default();
            for record in records {
                log.push_back(record);
            }
            if let Some(cap) = retention {
                let cap = cap.max(1);
                while log.len() > cap {
                    dropped.push(log.pop_front().expect("len checked"));
                }
            }
            return dropped;
        }
        {
            let log = st.logs.entry(key.clone()).or_default();
            for record in &records {
                log.push_back(record.clone());
            }
            if let Some(cap) = retention {
                let cap = cap.max(1);
                while log.len() > cap {
                    dropped.push(log.pop_front().expect("len checked"));
                }
            }
        }
        for record in &records {
            Self::notify(&mut st, &key, record);
        }
        dropped
    }

    /// Reads the full log at `key`.
    pub fn read_log(&self, key: &[u8]) -> Vec<Bytes> {
        self.ops.inc();
        self.locks.inc();
        self.state
            .lock()
            .logs
            .get(key)
            .map(|log| log.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Length of the log at `key`.
    pub fn log_len(&self, key: &[u8]) -> usize {
        self.state.lock().logs.get(key).map_or(0, VecDeque::len)
    }

    /// Reads the suffix of the log at `key` starting at position
    /// `start`, plus the log's total length, under one lock — the
    /// incremental-catch-up primitive for lazily built indexes over
    /// append-only logs. Positions are stable only for unbounded logs
    /// (no retention); a retention cap shifts them as the front pops.
    pub fn read_log_range(&self, key: &[u8], start: usize) -> (Vec<Bytes>, usize) {
        self.ops.inc();
        self.locks.inc();
        let st = self.state.lock();
        match st.logs.get(key) {
            Some(log) => {
                let total = log.len();
                let records = log.iter().skip(start).cloned().collect();
                (records, total)
            }
            None => (Vec::new(), 0),
        }
    }

    /// Subscribes to a key: returns the current point value and a channel
    /// of subsequent notifications, atomically with respect to writers —
    /// a writer cannot slip between the read and the registration.
    pub fn subscribe(&self, key: Bytes) -> (Option<Bytes>, Receiver<Bytes>) {
        self.ops.inc();
        self.locks.inc();
        let (tx, rx) = unbounded();
        let mut st = self.state.lock();
        let current = st.map.get(&key).cloned();
        st.subs.entry(key).or_default().push(tx);
        (current, rx)
    }

    /// Point values whose keys start with `prefix`. Linear scan — intended
    /// for offline tooling (profilers, debuggers), not the data path.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.ops.inc();
        self.locks.inc();
        self.state
            .lock()
            .map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Logs whose keys start with `prefix`, concatenated per key.
    pub fn scan_logs_prefix(&self, prefix: &[u8]) -> Vec<(Bytes, Vec<Bytes>)> {
        self.ops.inc();
        self.locks.inc();
        self.state
            .lock()
            .logs
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.iter().cloned().collect()))
            .collect()
    }

    /// Number of point keys stored.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the shard holds no point keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the entire shard contents (for replication / snapshots).
    pub fn snapshot(&self) -> (Vec<(Bytes, Bytes)>, Vec<(Bytes, Vec<Bytes>)>) {
        let st = self.state.lock();
        (
            st.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            st.logs
                .iter()
                .map(|(k, v)| (k.clone(), v.iter().cloned().collect()))
                .collect(),
        )
    }

    /// Restores shard contents from a snapshot, dropping existing state.
    pub fn restore(&self, map: Vec<(Bytes, Bytes)>, logs: Vec<(Bytes, Vec<Bytes>)>) {
        let mut st = self.state.lock();
        st.map = map.into_iter().collect();
        st.logs = logs
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect();
    }

    fn notify(st: &mut ShardState, key: &Bytes, value: &Bytes) {
        // Fast path: most shards have no subscribers most of the time
        // (subscriptions are per blocked `get`/resolver); skip the
        // per-write hash lookup entirely then.
        if st.subs.is_empty() {
            return;
        }
        if let Some(senders) = st.subs.get_mut(key) {
            senders.retain(|tx| tx.send(value.clone()).is_ok());
            if senders.is_empty() {
                st.subs.remove(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn get_set_delete() {
        let s = Shard::new();
        assert_eq!(s.get(b"k".as_ref()), None);
        s.set(b("k"), b("v"));
        assert_eq!(s.get(b"k".as_ref()), Some(b("v")));
        assert!(s.delete(b"k".as_ref()));
        assert!(!s.delete(b"k".as_ref()));
        assert_eq!(s.get(b"k".as_ref()), None);
    }

    #[test]
    fn set_if_absent_only_once() {
        let s = Shard::new();
        assert!(s.set_if_absent(b("k"), b("a")));
        assert!(!s.set_if_absent(b("k"), b("b")));
        assert_eq!(s.get(b"k".as_ref()), Some(b("a")));
    }

    #[test]
    fn update_read_modify_write() {
        let s = Shard::new();
        s.set(b("n"), Bytes::from(vec![1]));
        let new = s.update(b("n"), |cur| {
            let mut v = cur.unwrap().to_vec();
            v[0] += 1;
            Some(Bytes::from(v))
        });
        assert_eq!(new, Some(Bytes::from(vec![2])));
        // Returning None deletes.
        assert_eq!(s.update(b("n"), |_| None), None);
        assert_eq!(s.get(b"n".as_ref()), None);
    }

    #[test]
    fn subscribe_sees_current_then_updates() {
        let s = Shard::new();
        s.set(b("k"), b("v0"));
        let (cur, rx) = s.subscribe(b("k"));
        assert_eq!(cur, Some(b("v0")));
        s.set(b("k"), b("v1"));
        s.set(b("k"), b("v2"));
        assert_eq!(rx.recv().unwrap(), b("v1"));
        assert_eq!(rx.recv().unwrap(), b("v2"));
    }

    #[test]
    fn subscribe_before_create() {
        let s = Shard::new();
        let (cur, rx) = s.subscribe(b("later"));
        assert_eq!(cur, None);
        s.set(b("later"), b("v"));
        assert_eq!(rx.recv().unwrap(), b("v"));
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let s = Shard::new();
        let (_cur, rx) = s.subscribe(b("k"));
        drop(rx);
        s.set(b("k"), b("v"));
        // A second write must not panic or leak; sender list is cleaned.
        s.set(b("k"), b("v2"));
        assert_eq!(s.state.lock().subs.len(), 0);
    }

    #[test]
    fn logs_append_and_read() {
        let s = Shard::new();
        s.append(b("log"), b("r1"));
        s.append(b("log"), b("r2"));
        assert_eq!(s.read_log(b"log".as_ref()), vec![b("r1"), b("r2")]);
        assert_eq!(s.log_len(b"log".as_ref()), 2);
        assert_eq!(s.read_log(b"other".as_ref()), Vec::<Bytes>::new());
    }

    #[test]
    fn log_appends_notify_subscribers() {
        let s = Shard::new();
        let (_cur, rx) = s.subscribe(b("log"));
        s.append(b("log"), b("rec"));
        assert_eq!(rx.recv().unwrap(), b("rec"));
    }

    #[test]
    fn scan_prefix_filters() {
        let s = Shard::new();
        s.set(b("a:1"), b("x"));
        s.set(b("a:2"), b("y"));
        s.set(b("b:1"), b("z"));
        let mut hits = s.scan_prefix(b"a:");
        hits.sort();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, b("x"));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let s = Shard::new();
        s.set(b("k"), b("v"));
        s.append(b("log"), b("r"));
        let (map, logs) = s.snapshot();
        let t = Shard::new();
        t.restore(map, logs);
        assert_eq!(t.get(b"k".as_ref()), Some(b("v")));
        assert_eq!(t.read_log(b"log".as_ref()), vec![b("r")]);
    }

    #[test]
    fn set_many_commits_all_and_notifies() {
        let s = Shard::new();
        let (_cur, rx) = s.subscribe(b("k1"));
        s.set_many(vec![(b("k1"), b("v1")), (b("k2"), b("v2"))]);
        assert_eq!(s.get(b"k1".as_ref()), Some(b("v1")));
        assert_eq!(s.get(b"k2".as_ref()), Some(b("v2")));
        assert_eq!(rx.recv().unwrap(), b("v1"));
    }

    #[test]
    fn get_many_is_positional() {
        let s = Shard::new();
        s.set(b("a"), b("1"));
        s.set(b("c"), b("3"));
        let got = s.get_many(&[b("a"), b("b"), b("c")]);
        assert_eq!(got, vec![Some(b("1")), None, Some(b("3"))]);
    }

    #[test]
    fn update_many_applies_per_key() {
        let s = Shard::new();
        s.set(b("n"), Bytes::from(vec![1]));
        let bump: fn(Option<&Bytes>) -> Option<Bytes> = |cur| {
            let mut v = cur.map(|b| b.to_vec()).unwrap_or_else(|| vec![8]);
            v[0] += 1;
            Some(Bytes::from(v))
        };
        s.update_many(vec![(b("n"), bump), (b("m"), bump)]);
        assert_eq!(s.get(b"n".as_ref()), Some(Bytes::from(vec![2])));
        assert_eq!(s.get(b"m".as_ref()), Some(Bytes::from(vec![9])));
    }

    #[test]
    fn append_many_is_ordered_and_notifies() {
        let s = Shard::new();
        let (_cur, rx) = s.subscribe(b("log"));
        let dropped = s.append_many(b("log"), vec![b("r1"), b("r2"), b("r3")], None);
        assert!(dropped.is_empty());
        assert_eq!(s.read_log(b"log".as_ref()), vec![b("r1"), b("r2"), b("r3")]);
        assert_eq!(rx.recv().unwrap(), b("r1"));
        assert_eq!(rx.recv().unwrap(), b("r2"));
    }

    #[test]
    fn bounded_append_drops_oldest() {
        let s = Shard::new();
        s.append_many(b("log"), vec![b("r1"), b("r2")], Some(4));
        let dropped = s.append_many(b("log"), vec![b("r3"), b("r4"), b("r5")], Some(4));
        assert_eq!(dropped, vec![b("r1")]);
        assert_eq!(
            s.read_log(b"log".as_ref()),
            vec![b("r2"), b("r3"), b("r4"), b("r5")]
        );
        assert_eq!(s.log_len(b"log".as_ref()), 4);
    }

    #[test]
    fn ops_counter_increments() {
        let s = Shard::new();
        let before = s.ops.get();
        s.set(b("k"), b("v"));
        s.get(b"k".as_ref());
        assert!(s.ops.get() >= before + 2);
    }
}
