//! Primary/backup replication for the control plane.
//!
//! The paper's recovery story assumes the database itself is
//! fault-tolerant ("so long as the database is fault-tolerant, we can
//! recover from component failures by simply restarting them"). This
//! module demonstrates that assumption concretely: a [`ReplicatedKv`]
//! applies every write synchronously to a primary and a backup
//! [`KvStore`]; on [`ReplicatedKv::fail_primary`], reads and writes cut
//! over to the backup with no state loss.
//!
//! Subscriptions are served by the primary only; after failover,
//! subscribers must re-subscribe (the runtime's components are stateless,
//! so in the paper's design they would simply be restarted — recreating
//! their subscriptions in the process).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use crate::store::KvStore;

/// A pair of synchronously-replicated control-plane stores.
pub struct ReplicatedKv {
    primary: Arc<KvStore>,
    backup: Arc<KvStore>,
    failed_over: AtomicBool,
}

impl ReplicatedKv {
    /// Creates a replicated store with `num_shards` shards on each
    /// replica.
    pub fn new(num_shards: usize) -> Arc<Self> {
        Arc::new(ReplicatedKv {
            primary: KvStore::new(num_shards),
            backup: KvStore::new(num_shards),
            failed_over: AtomicBool::new(false),
        })
    }

    /// The store currently serving reads.
    pub fn active(&self) -> &Arc<KvStore> {
        if self.failed_over.load(Ordering::Acquire) {
            &self.backup
        } else {
            &self.primary
        }
    }

    /// Whether failover has occurred.
    pub fn is_failed_over(&self) -> bool {
        self.failed_over.load(Ordering::Acquire)
    }

    /// Simulates losing the primary: subsequent operations hit the backup,
    /// which already holds every acknowledged write.
    pub fn fail_primary(&self) {
        self.failed_over.store(true, Ordering::Release);
    }

    /// Re-synchronizes a (recovered) primary from the backup and resumes
    /// serving from it.
    pub fn restore_primary(&self) {
        let snap = self.backup.full_snapshot();
        self.primary.restore_snapshot(snap);
        self.failed_over.store(false, Ordering::Release);
    }

    /// Point read from the active replica.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.active().get(key)
    }

    /// Replicated point write.
    pub fn set(&self, key: Bytes, value: Bytes) {
        if !self.is_failed_over() {
            self.primary.set(key.clone(), value.clone());
        }
        self.backup.set(key, value);
    }

    /// Replicated append.
    pub fn append(&self, key: Bytes, record: Bytes) {
        if !self.is_failed_over() {
            self.primary.append(key.clone(), record.clone());
        }
        self.backup.append(key, record);
    }

    /// Reads the log from the active replica.
    pub fn read_log(&self, key: &[u8]) -> Vec<Bytes> {
        self.active().read_log(key)
    }

    /// Subscribes on the active replica (see module docs for failover
    /// semantics).
    pub fn subscribe(&self, key: Bytes) -> (Option<Bytes>, Receiver<Bytes>) {
        self.active().subscribe(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn writes_survive_failover() {
        let kv = ReplicatedKv::new(2);
        kv.set(b("k1"), b("v1"));
        kv.append(b("log"), b("r1"));
        kv.fail_primary();
        assert!(kv.is_failed_over());
        assert_eq!(kv.get(b"k1"), Some(b("v1")));
        assert_eq!(kv.read_log(b"log"), vec![b("r1")]);
    }

    #[test]
    fn writes_after_failover_land_on_backup() {
        let kv = ReplicatedKv::new(2);
        kv.fail_primary();
        kv.set(b("k"), b("v"));
        assert_eq!(kv.get(b"k"), Some(b("v")));
    }

    #[test]
    fn restore_primary_resyncs() {
        let kv = ReplicatedKv::new(2);
        kv.set(b("before"), b("1"));
        kv.fail_primary();
        kv.set(b("during"), b("2"));
        kv.restore_primary();
        assert!(!kv.is_failed_over());
        assert_eq!(kv.get(b"before"), Some(b("1")));
        assert_eq!(kv.get(b"during"), Some(b("2")));
    }

    #[test]
    fn subscription_on_active_replica() {
        let kv = ReplicatedKv::new(2);
        let (_cur, rx) = kv.subscribe(b("k"));
        kv.set(b("k"), b("v"));
        assert_eq!(rx.recv().unwrap(), b("v"));
    }
}
