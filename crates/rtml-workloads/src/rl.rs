//! The paper's §4.2 RL workload: alternating parallel-simulation and
//! GPU-policy stages.
//!
//! "The workload alternates between stages in which actions are taken in
//! parallel simulations and actions are computed in parallel on GPUs.
//! Despite the BSP nature of the example, an implementation in Spark is
//! 9x slower than the single-threaded implementation due to system
//! overhead. An implementation in our prototype is 7x faster than the
//! single-threaded version and 63x faster than the Spark
//! implementation."
//!
//! Three implementations of the *same* computation (bit-identical
//! checksums):
//!
//! - [`run_serial`] / [`run_engine`] — one code path over any
//!   [`Engine`] (the serial and BSP baselines);
//! - [`run_rtml`] — futures chained through the cluster: simulation
//!   tasks take the policy future as an argument, the GPU update task
//!   consumes their aggregate, and its output future feeds the next
//!   iteration's simulations;
//! - [`run_rtml_pipelined`] vs [`run_rtml_batched`] — the paper's
//!   closing remark about `wait`: process simulations in completion
//!   order to pipeline them with GPU work (experiment E6).
//!
//! Per the paper's own footnote, the GPU policy step is *not* charged
//! BSP overhead ("numbers are reported as if it had been perfectly
//! parallelized with no overhead in Spark"): [`run_engine`] runs the
//! update inline at the driver.

use std::time::{Duration, Instant};

use rtml_baselines::{Engine, StageTask};
use rtml_common::error::Result;
use rtml_common::impl_codec_struct;
use rtml_common::resources::Resources;
use rtml_common::time::occupy;
use rtml_runtime::{Cluster, Driver, Func2, Func4, ObjectRef, TaskOptions};

use crate::atari::{AtariConfig, AtariSim};
use crate::policy::{Device, LinearPolicy};

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct RlConfig {
    /// Parallel rollouts per iteration.
    pub rollouts: usize,
    /// Frames per simulation task (frames × frame cost ≈ the paper's
    /// ~7 ms tasks).
    pub frames_per_task: u32,
    /// Compute burned per frame.
    pub frame_cost: Duration,
    /// Training iterations (sim stage + policy stage each).
    pub iterations: usize,
    /// Observation dimension.
    pub obs_dim: u32,
    /// Action count.
    pub n_actions: u32,
    /// GPU kernel cost for the policy stage.
    pub policy_kernel_cost: Duration,
    /// GPU speedup over CPU for that kernel.
    pub gpu_speedup: f64,
    /// Every k-th rollout runs `straggler_factor` slower (0 = none).
    pub straggler_every: usize,
    /// Slowdown multiplier for stragglers.
    pub straggler_factor: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            rollouts: 8,
            frames_per_task: 10,
            frame_cost: Duration::from_micros(700),
            iterations: 5,
            obs_dim: 16,
            n_actions: 4,
            policy_kernel_cost: Duration::from_millis(5),
            gpu_speedup: 10.0,
            straggler_every: 0,
            straggler_factor: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

impl RlConfig {
    fn sim_params(&self, iter: usize, rollout: usize) -> SimTaskParams {
        let mut frame_cost_micros = self.frame_cost.as_micros() as u64;
        if self.straggler_every > 0 && rollout % self.straggler_every == self.straggler_every - 1 {
            frame_cost_micros = (frame_cost_micros as f64 * self.straggler_factor) as u64;
        }
        SimTaskParams {
            iter: iter as u64,
            rollout: rollout as u64,
            seed: self.seed,
            frames: self.frames_per_task,
            frame_cost_micros,
            obs_dim: self.obs_dim,
        }
    }

    fn kernel_params(&self) -> KernelParams {
        KernelParams {
            cost_micros: self.policy_kernel_cost.as_micros() as u64,
            gpu_speedup_milli: (self.gpu_speedup * 1000.0) as u64,
        }
    }

    /// Whether the policy stage should demand a GPU (the harness only
    /// asks for one if the cluster has one).
    pub fn policy_options(&self, cluster_has_gpu: bool) -> TaskOptions {
        if cluster_has_gpu {
            TaskOptions::resources(Resources::new(0.0, 1.0))
        } else {
            TaskOptions::cpu(1.0)
        }
    }
}

/// Everything a simulation task needs, serializable for the task spec.
#[derive(Clone, Debug, PartialEq)]
pub struct SimTaskParams {
    /// Iteration index.
    pub iter: u64,
    /// Rollout index within the iteration.
    pub rollout: u64,
    /// Master seed.
    pub seed: u64,
    /// Frames to simulate.
    pub frames: u32,
    /// Per-frame compute cost (already straggler-adjusted).
    pub frame_cost_micros: u64,
    /// Observation dimension.
    pub obs_dim: u32,
}

impl_codec_struct!(SimTaskParams {
    iter,
    rollout,
    seed,
    frames,
    frame_cost_micros,
    obs_dim
});

/// A simulation task's result.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOutput {
    /// Element-wise sum of observations seen.
    pub obs_sum: Vec<f64>,
    /// Total reward.
    pub reward: f64,
}

impl_codec_struct!(SimOutput { obs_sum, reward });

/// GPU kernel cost description (fixed-point speedup for codec
/// determinism).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelParams {
    /// Kernel cost in microseconds.
    pub cost_micros: u64,
    /// Speedup ×1000 (e.g. 10000 = 10x).
    pub gpu_speedup_milli: u64,
}

impl_codec_struct!(KernelParams {
    cost_micros,
    gpu_speedup_milli
});

impl KernelParams {
    /// The device this kernel models.
    pub fn device(&self) -> Device {
        if self.gpu_speedup_milli > 1000 {
            Device::Gpu {
                speedup: self.gpu_speedup_milli as f64 / 1000.0,
            }
        } else {
            Device::Cpu
        }
    }

    /// The kernel cost.
    pub fn cost(&self) -> Duration {
        Duration::from_micros(self.cost_micros)
    }
}

/// Result of one full training run.
#[derive(Clone, Debug, PartialEq)]
pub struct RlResult {
    /// Wall-clock time.
    pub wall: Duration,
    /// Bit-exact checksum of the final policy (cross-engine equality).
    pub checksum: u64,
    /// Total reward accumulated (bit pattern, for exact comparison).
    pub total_reward_bits: u64,
    /// Simulation tasks executed.
    pub sim_tasks: usize,
}

/// The simulation task body, shared verbatim by every engine.
pub fn run_sim_task(params: &SimTaskParams, policy: &LinearPolicy) -> SimOutput {
    let config = AtariConfig {
        frame_cost: Duration::from_micros(params.frame_cost_micros),
        obs_dim: params.obs_dim as usize,
        max_steps: u32::MAX,
    };
    let episode_seed = params
        .seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(params.iter * 1_000_003 + params.rollout);
    let mut sim = AtariSim::new(config, episode_seed);
    let (obs_sum, reward) = sim.rollout(params.frames, |obs| policy.act(obs));
    SimOutput { obs_sum, reward }
}

/// Aggregates simulation outputs in rollout-index order (float-order
/// discipline: every engine aggregates identically).
pub fn aggregate(outputs: &[SimOutput], obs_dim: usize) -> (Vec<f64>, f64) {
    let mut agg = vec![0.0; obs_dim];
    let mut reward = 0.0;
    for output in outputs {
        for (a, v) in agg.iter_mut().zip(&output.obs_sum) {
            *a += v;
        }
        reward += output.reward;
    }
    (agg, reward)
}

/// The policy-stage body, shared verbatim by every engine: pays the
/// (device-scaled) kernel cost and applies the deterministic update.
pub fn run_update_task(
    mut policy: LinearPolicy,
    agg_obs: &[f64],
    reward: f64,
    kernel: &KernelParams,
) -> LinearPolicy {
    occupy(match kernel.device() {
        Device::Cpu => kernel.cost(),
        Device::Gpu { speedup } => kernel.cost().div_f64(speedup.max(1.0)),
    });
    policy.update(agg_obs, reward);
    policy
}

/// Runs the workload on any bulk-synchronous [`Engine`].
pub fn run_engine<E: Engine>(config: &RlConfig, engine: &E) -> RlResult {
    let start = Instant::now();
    let mut policy = LinearPolicy::new(config.obs_dim, config.n_actions, config.seed);
    let kernel = config.kernel_params();
    let mut total_reward = 0.0;
    let mut sim_tasks = 0;
    for iter in 0..config.iterations {
        let stage: Vec<StageTask<SimOutput>> = (0..config.rollouts)
            .map(|rollout| {
                let params = config.sim_params(iter, rollout);
                let policy = policy.clone();
                Box::new(move || run_sim_task(&params, &policy)) as StageTask<SimOutput>
            })
            .collect();
        let outputs = engine.run_stage(stage);
        sim_tasks += outputs.len();
        let (agg, reward) = aggregate(&outputs, config.obs_dim as usize);
        total_reward += reward;
        // Policy stage: per the paper's footnote, not charged engine
        // overhead (run inline, device-scaled cost only).
        policy = run_update_task(policy, &agg, reward, &kernel);
    }
    RlResult {
        wall: start.elapsed(),
        checksum: policy.checksum(),
        total_reward_bits: total_reward.to_bits(),
        sim_tasks,
    }
}

/// Single-threaded reference (the paper's baseline of record).
pub fn run_serial(config: &RlConfig) -> RlResult {
    run_engine(config, &rtml_baselines::SerialEngine)
}

/// The rtml task functions, registered once per cluster.
pub struct RlFuncs {
    /// Simulation rollout task.
    pub sim: Func2<SimTaskParams, LinearPolicy, SimOutput>,
    /// Policy update task.
    pub update: Func4<LinearPolicy, Vec<f64>, f64, KernelParams, LinearPolicy>,
    /// Per-rollout scoring task (pipelining experiment).
    pub score: Func2<SimOutput, KernelParams, f64>,
}

impl RlFuncs {
    /// Registers the workload's functions on `cluster`.
    pub fn register(cluster: &Cluster) -> RlFuncs {
        RlFuncs {
            sim: cluster.register_fn2("rl_sim", |params: SimTaskParams, policy: LinearPolicy| {
                Ok(run_sim_task(&params, &policy))
            }),
            update: cluster.register_fn4(
                "rl_update",
                |policy: LinearPolicy, agg: Vec<f64>, reward: f64, kernel: KernelParams| {
                    Ok(run_update_task(policy, &agg, reward, &kernel))
                },
            ),
            score: cluster.register_fn2("rl_score", |output: SimOutput, kernel: KernelParams| {
                occupy(match kernel.device() {
                    Device::Cpu => kernel.cost(),
                    Device::Gpu { speedup } => kernel.cost().div_f64(speedup.max(1.0)),
                });
                // Deterministic scalar score.
                let s: f64 = output.obs_sum.iter().sum::<f64>() + output.reward;
                Ok(s)
            }),
        }
    }
}

/// Runs the workload on an rtml cluster: simulations fan out as tasks,
/// the policy future chains between iterations (a pure dataflow loop).
pub fn run_rtml(
    config: &RlConfig,
    driver: &Driver,
    funcs: &RlFuncs,
    cluster_has_gpu: bool,
) -> Result<RlResult> {
    let start = Instant::now();
    let kernel = config.kernel_params();
    let initial = LinearPolicy::new(config.obs_dim, config.n_actions, config.seed);
    let mut policy_ref: ObjectRef<LinearPolicy> = driver.put(&initial)?;
    let mut total_reward = 0.0;
    let mut sim_tasks = 0;
    for iter in 0..config.iterations {
        let sim_futs: Vec<ObjectRef<SimOutput>> = (0..config.rollouts)
            .map(|rollout| {
                driver.submit2(&funcs.sim, config.sim_params(iter, rollout), &policy_ref)
            })
            .collect::<Result<_>>()?;
        sim_tasks += sim_futs.len();
        // Gather in index order (same float order as the baselines).
        let mut outputs = Vec::with_capacity(sim_futs.len());
        for fut in &sim_futs {
            outputs.push(driver.get(fut)?);
        }
        let (agg, reward) = aggregate(&outputs, config.obs_dim as usize);
        total_reward += reward;
        policy_ref = driver.submit4_opts(
            &funcs.update,
            &policy_ref,
            agg,
            reward,
            kernel.clone(),
            config.policy_options(cluster_has_gpu),
        )?;
    }
    let final_policy = driver.get(&policy_ref)?;
    Ok(RlResult {
        wall: start.elapsed(),
        checksum: final_policy.checksum(),
        total_reward_bits: total_reward.to_bits(),
        sim_tasks,
    })
}

/// E6 helper: one iteration's sims, each post-processed by a GPU scoring
/// task **as it completes** (`wait`-driven pipelining). Returns the
/// fold of scores in rollout order plus the makespan.
pub fn run_rtml_pipelined(
    config: &RlConfig,
    driver: &Driver,
    funcs: &RlFuncs,
    cluster_has_gpu: bool,
) -> Result<(f64, Duration)> {
    let start = Instant::now();
    let kernel = config.kernel_params();
    let policy = LinearPolicy::new(config.obs_dim, config.n_actions, config.seed);
    let policy_ref = driver.put(&policy)?;
    let sim_futs: Vec<ObjectRef<SimOutput>> = (0..config.rollouts)
        .map(|rollout| driver.submit2(&funcs.sim, config.sim_params(0, rollout), &policy_ref))
        .collect::<Result<_>>()?;

    // As each simulation finishes, immediately submit its scoring task:
    // GPU work overlaps the remaining simulations (the paper's wait
    // pipelining).
    let mut pending: Vec<ObjectRef<SimOutput>> = sim_futs.clone();
    let mut score_futs: Vec<(usize, ObjectRef<f64>)> = Vec::new();
    while !pending.is_empty() {
        let (ready, rest) = driver.wait(&pending, 1, Duration::from_secs(60));
        for fut in ready {
            let index = sim_futs
                .iter()
                .position(|f| *f == fut)
                .expect("known future");
            let score = driver.submit2_opts(
                &funcs.score,
                &fut,
                kernel.clone(),
                config.policy_options(cluster_has_gpu),
            )?;
            score_futs.push((index, score));
        }
        pending = rest;
    }
    // Fold in rollout order for determinism.
    score_futs.sort_by_key(|(i, _)| *i);
    let mut total = 0.0;
    for (_, fut) in &score_futs {
        total += driver.get(fut)?;
    }
    Ok((total, start.elapsed()))
}

/// E6 baseline: wait for **all** simulations, then score them (no
/// overlap).
pub fn run_rtml_batched(
    config: &RlConfig,
    driver: &Driver,
    funcs: &RlFuncs,
    cluster_has_gpu: bool,
) -> Result<(f64, Duration)> {
    let start = Instant::now();
    let kernel = config.kernel_params();
    let policy = LinearPolicy::new(config.obs_dim, config.n_actions, config.seed);
    let policy_ref = driver.put(&policy)?;
    let sim_futs: Vec<ObjectRef<SimOutput>> = (0..config.rollouts)
        .map(|rollout| driver.submit2(&funcs.sim, config.sim_params(0, rollout), &policy_ref))
        .collect::<Result<_>>()?;
    // Barrier: all sims first.
    let (ready, pending) = driver.wait(&sim_futs, sim_futs.len(), Duration::from_secs(120));
    debug_assert!(pending.is_empty());
    debug_assert_eq!(ready.len(), sim_futs.len());
    let mut score_futs = Vec::new();
    for fut in &sim_futs {
        score_futs.push(driver.submit2_opts(
            &funcs.score,
            fut,
            kernel.clone(),
            config.policy_options(cluster_has_gpu),
        )?);
    }
    let mut total = 0.0;
    for fut in &score_futs {
        total += driver.get(fut)?;
    }
    Ok((total, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_baselines::{BspConfig, BspEngine};
    use rtml_runtime::ClusterConfig;

    fn tiny() -> RlConfig {
        RlConfig {
            rollouts: 4,
            frames_per_task: 3,
            frame_cost: Duration::ZERO,
            iterations: 2,
            policy_kernel_cost: Duration::ZERO,
            ..RlConfig::default()
        }
    }

    #[test]
    fn serial_is_deterministic() {
        let a = run_serial(&tiny());
        let b = run_serial(&tiny());
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.total_reward_bits, b.total_reward_bits);
        assert_eq!(a.sim_tasks, 8);
    }

    #[test]
    fn bsp_matches_serial_bit_for_bit() {
        let serial = run_serial(&tiny());
        let engine = BspEngine::new(BspConfig {
            workers: 4,
            per_task_overhead: Duration::ZERO,
            per_stage_overhead: Duration::ZERO,
        });
        let bsp = run_engine(&tiny(), &engine);
        assert_eq!(serial.checksum, bsp.checksum);
        assert_eq!(serial.total_reward_bits, bsp.total_reward_bits);
    }

    #[test]
    fn rtml_matches_serial_bit_for_bit() {
        let serial = run_serial(&tiny());
        let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let rtml = run_rtml(&tiny(), &driver, &funcs, false).unwrap();
        assert_eq!(serial.checksum, rtml.checksum);
        assert_eq!(serial.total_reward_bits, rtml.total_reward_bits);
        assert_eq!(rtml.sim_tasks, 8);
        cluster.shutdown();
    }

    #[test]
    fn pipelined_and_batched_agree_on_value() {
        let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let config = tiny();
        let (a, _) = run_rtml_pipelined(&config, &driver, &funcs, false).unwrap();
        let (b, _) = run_rtml_batched(&config, &driver, &funcs, false).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        cluster.shutdown();
    }

    #[test]
    fn stragglers_slow_down_marked_rollouts() {
        let config = RlConfig {
            straggler_every: 4,
            straggler_factor: 8.0,
            frame_cost: Duration::from_micros(100),
            ..tiny()
        };
        let normal = config.sim_params(0, 0);
        let straggler = config.sim_params(0, 3);
        assert_eq!(normal.frame_cost_micros, 100);
        assert_eq!(straggler.frame_cost_micros, 800);
    }

    #[test]
    fn kernel_params_device_mapping() {
        let gpu = KernelParams {
            cost_micros: 100,
            gpu_speedup_milli: 8000,
        };
        assert_eq!(gpu.device(), Device::Gpu { speedup: 8.0 });
        let cpu = KernelParams {
            cost_micros: 100,
            gpu_speedup_milli: 1000,
        };
        assert_eq!(cpu.device(), Device::Cpu);
    }
}
