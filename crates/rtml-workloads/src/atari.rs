//! A deterministic arcade-style environment.
//!
//! Substitute for the Atari emulator in the paper's §4.2 experiment (see
//! DESIGN.md). What the experiment measures is *system overhead around
//! many ~7 ms simulation tasks*, so the requirements on the environment
//! are: a real per-step CPU cost, observation/reward outputs that depend
//! deterministically on the action sequence, and cheap reseeding for
//! parallel rollouts. This implementation provides exactly that: a
//! 64-bit mixing state machine (so replays are bit-identical) plus a
//! calibrated busy-work kernel per frame.

use std::time::Duration;

use rtml_common::time::{deterministic_work, occupy};

/// Environment parameters.
#[derive(Clone, Debug)]
pub struct AtariConfig {
    /// Wall-clock compute burned per frame (the "emulator" cost).
    pub frame_cost: Duration,
    /// Observation vector length.
    pub obs_dim: usize,
    /// Episode length cap.
    pub max_steps: u32,
}

impl Default for AtariConfig {
    fn default() -> Self {
        AtariConfig {
            frame_cost: Duration::from_micros(700),
            obs_dim: 16,
            max_steps: 1000,
        }
    }
}

/// One step's outputs.
#[derive(Clone, Debug, PartialEq)]
pub struct StepResult {
    /// Observation after the step.
    pub obs: Vec<f64>,
    /// Reward in `[0, 1)`.
    pub reward: f64,
    /// Whether the episode ended.
    pub done: bool,
}

/// The simulator. Cheap to construct; every episode is reproducible from
/// its seed.
#[derive(Clone, Debug)]
pub struct AtariSim {
    config: AtariConfig,
    state: u64,
    steps: u32,
}

impl AtariSim {
    /// Starts an episode from `seed`.
    pub fn new(config: AtariConfig, seed: u64) -> AtariSim {
        AtariSim {
            config,
            state: deterministic_work(seed ^ 0xa7a71, 4),
            steps: 0,
        }
    }

    /// The raw internal state (used by MCTS to branch simulations).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Restores a simulator at an arbitrary state (MCTS re-rooting).
    pub fn from_state(config: AtariConfig, state: u64, steps: u32) -> AtariSim {
        AtariSim {
            config,
            state,
            steps,
        }
    }

    /// The current observation, derived from the state.
    pub fn observation(&self) -> Vec<f64> {
        let mut obs = Vec::with_capacity(self.config.obs_dim);
        let mut x = self.state;
        for _ in 0..self.config.obs_dim {
            x = deterministic_work(x, 1);
            // Map to [-1, 1) for policy-friendly inputs.
            obs.push(((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        obs
    }

    /// Advances one frame with `action`, paying the configured compute
    /// cost.
    pub fn step(&mut self, action: u32) -> StepResult {
        occupy(self.config.frame_cost);
        self.state = deterministic_work(self.state ^ (action as u64).wrapping_mul(0x9e37), 2);
        self.steps += 1;
        let reward = (self.state >> 40) as f64 / (1u64 << 24) as f64;
        let done = self.steps >= self.config.max_steps || self.state & 0x3ff == 0;
        StepResult {
            obs: self.observation(),
            reward,
            done,
        }
    }

    /// Runs `frames` steps with a fixed action, summing rewards; used by
    /// rollout tasks. Returns (obs sum vector, total reward).
    pub fn rollout(
        &mut self,
        frames: u32,
        mut pick_action: impl FnMut(&[f64]) -> u32,
    ) -> (Vec<f64>, f64) {
        let mut obs_sum = vec![0.0; self.config.obs_dim];
        let mut total = 0.0;
        let mut obs = self.observation();
        for _ in 0..frames {
            let action = pick_action(&obs);
            let step = self.step(action);
            for (acc, v) in obs_sum.iter_mut().zip(&step.obs) {
                *acc += v;
            }
            total += step.reward;
            obs = step.obs;
            if step.done {
                break;
            }
        }
        (obs_sum, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> AtariConfig {
        AtariConfig {
            frame_cost: Duration::ZERO,
            obs_dim: 8,
            max_steps: 100,
        }
    }

    #[test]
    fn episodes_are_deterministic() {
        let mut a = AtariSim::new(fast_config(), 7);
        let mut b = AtariSim::new(fast_config(), 7);
        for action in [0u32, 1, 2, 3, 2, 1] {
            assert_eq!(a.step(action), b.step(action));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = AtariSim::new(fast_config(), 1);
        let mut b = AtariSim::new(fast_config(), 2);
        assert_ne!(a.step(0).obs, b.step(0).obs);
    }

    #[test]
    fn actions_change_trajectories() {
        let mut a = AtariSim::new(fast_config(), 7);
        let mut b = AtariSim::new(fast_config(), 7);
        a.step(0);
        b.step(1);
        assert_ne!(a.state(), b.state());
    }

    #[test]
    fn observation_is_bounded() {
        let sim = AtariSim::new(fast_config(), 3);
        for v in sim.observation() {
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
        assert_eq!(sim.observation().len(), 8);
    }

    #[test]
    fn episode_caps_at_max_steps() {
        let mut sim = AtariSim::new(
            AtariConfig {
                max_steps: 5,
                ..fast_config()
            },
            9,
        );
        let mut dones = 0;
        for _ in 0..5 {
            if sim.step(0).done {
                dones += 1;
            }
        }
        assert!(dones >= 1);
        assert!(sim.steps() <= 5);
    }

    #[test]
    fn frame_cost_burns_time() {
        let mut sim = AtariSim::new(
            AtariConfig {
                frame_cost: Duration::from_millis(3),
                ..fast_config()
            },
            1,
        );
        let start = std::time::Instant::now();
        sim.step(0);
        assert!(start.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn rollout_accumulates() {
        let mut sim = AtariSim::new(fast_config(), 11);
        let (obs_sum, reward) = sim.rollout(10, |_| 1);
        assert_eq!(obs_sum.len(), 8);
        assert!(reward >= 0.0);
        assert!(sim.steps() > 0);
    }

    #[test]
    fn from_state_resumes_identically() {
        let mut a = AtariSim::new(fast_config(), 5);
        a.step(2);
        let mut b = AtariSim::from_state(fast_config(), a.state(), a.steps());
        assert_eq!(a.step(1), b.step(1));
    }
}
