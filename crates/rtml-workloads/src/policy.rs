//! A linear policy with device-dependent batched evaluation.
//!
//! Stands in for the paper's GPU-evaluated neural-network policy (see
//! DESIGN.md substitutions). The policy is a real `obs_dim × n_actions`
//! weight matrix: `act` computes a genuine matrix-vector product, and
//! batched evaluation additionally pays a configurable kernel cost that
//! a [`Device::Gpu`] divides by its speedup — giving the scheduler a
//! true heterogeneity decision (R4) without real CUDA.

use std::time::Duration;

use rtml_common::impl_codec_struct;
use rtml_common::time::{deterministic_work, occupy};

/// Where a batched evaluation runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Device {
    /// Plain CPU execution.
    Cpu,
    /// Accelerated execution: kernel cost divided by `speedup`.
    Gpu {
        /// How many times faster than CPU.
        speedup: f64,
    },
}

impl Device {
    fn scale(self, cost: Duration) -> Duration {
        match self {
            Device::Cpu => cost,
            Device::Gpu { speedup } => {
                if speedup <= 1.0 {
                    cost
                } else {
                    cost.div_f64(speedup)
                }
            }
        }
    }
}

/// A deterministic linear policy.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearPolicy {
    /// Row-major `n_actions × obs_dim` weights.
    pub weights: Vec<f64>,
    /// Observation dimension.
    pub obs_dim: u32,
    /// Number of discrete actions.
    pub n_actions: u32,
    /// Update counter.
    pub version: u64,
}

impl_codec_struct!(LinearPolicy {
    weights,
    obs_dim,
    n_actions,
    version
});

impl LinearPolicy {
    /// Builds a policy with deterministic pseudo-random weights.
    pub fn new(obs_dim: u32, n_actions: u32, seed: u64) -> LinearPolicy {
        let mut weights = Vec::with_capacity((obs_dim * n_actions) as usize);
        let mut x = seed ^ 0x51f0;
        for _ in 0..obs_dim * n_actions {
            x = deterministic_work(x, 1);
            weights.push(((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        LinearPolicy {
            weights,
            obs_dim,
            n_actions,
            version: 0,
        }
    }

    /// Greedy action for one observation (a real mat-vec product).
    pub fn act(&self, obs: &[f64]) -> u32 {
        debug_assert_eq!(obs.len(), self.obs_dim as usize);
        let mut best = 0u32;
        let mut best_score = f64::NEG_INFINITY;
        for a in 0..self.n_actions {
            let row = &self.weights[(a * self.obs_dim) as usize..((a + 1) * self.obs_dim) as usize];
            let score: f64 = row.iter().zip(obs).map(|(w, o)| w * o).sum();
            if score > best_score {
                best_score = score;
                best = a;
            }
        }
        best
    }

    /// Batched greedy actions, paying `kernel_cost` scaled by the device.
    /// This is the paper's "actions are computed in parallel on GPUs"
    /// stage.
    pub fn act_batch(&self, batch: &[Vec<f64>], kernel_cost: Duration, device: Device) -> Vec<u32> {
        occupy(device.scale(kernel_cost));
        batch.iter().map(|obs| self.act(obs)).collect()
    }

    /// Deterministic policy update from aggregated rollout statistics
    /// (a stand-in for a gradient step: nudges weights toward the
    /// observation aggregate, scaled by reward).
    pub fn update(&mut self, obs_aggregate: &[f64], total_reward: f64) {
        debug_assert_eq!(obs_aggregate.len(), self.obs_dim as usize);
        let lr = 1e-3 * (1.0 + total_reward).ln().max(0.0);
        for a in 0..self.n_actions as usize {
            for (i, agg) in obs_aggregate.iter().enumerate() {
                let w = &mut self.weights[a * self.obs_dim as usize + i];
                *w += lr * agg * if a % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        self.version += 1;
    }

    /// Bit-exact checksum over the weights, for cross-engine equality
    /// assertions.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0xcbf29ce484222325u64 ^ self.version;
        for w in &self.weights {
            acc = deterministic_work(acc ^ w.to_bits(), 1);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_common::codec::{decode_from_slice, encode_to_bytes};

    #[test]
    fn construction_is_deterministic() {
        let a = LinearPolicy::new(8, 4, 42);
        let b = LinearPolicy::new(8, 4, 42);
        assert_eq!(a, b);
        assert_eq!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), LinearPolicy::new(8, 4, 43).checksum());
    }

    #[test]
    fn act_picks_argmax() {
        let mut p = LinearPolicy::new(2, 2, 1);
        // Force action 1 to dominate.
        p.weights = vec![0.0, 0.0, 1.0, 1.0];
        assert_eq!(p.act(&[1.0, 1.0]), 1);
        p.weights = vec![1.0, 1.0, 0.0, 0.0];
        assert_eq!(p.act(&[1.0, 1.0]), 0);
    }

    #[test]
    fn update_changes_weights_and_version() {
        let mut p = LinearPolicy::new(4, 2, 7);
        let before = p.checksum();
        p.update(&[0.5, -0.5, 0.1, 0.9], 3.0);
        assert_ne!(p.checksum(), before);
        assert_eq!(p.version, 1);
    }

    #[test]
    fn updates_are_deterministic() {
        let mut a = LinearPolicy::new(4, 2, 7);
        let mut b = LinearPolicy::new(4, 2, 7);
        a.update(&[1.0, 2.0, 3.0, 4.0], 2.0);
        b.update(&[1.0, 2.0, 3.0, 4.0], 2.0);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn gpu_is_faster_than_cpu() {
        let p = LinearPolicy::new(8, 4, 1);
        let batch: Vec<Vec<f64>> = (0..4).map(|_| vec![0.1; 8]).collect();
        let start = std::time::Instant::now();
        p.act_batch(&batch, Duration::from_millis(20), Device::Cpu);
        let cpu = start.elapsed();
        let start = std::time::Instant::now();
        p.act_batch(
            &batch,
            Duration::from_millis(20),
            Device::Gpu { speedup: 10.0 },
        );
        let gpu = start.elapsed();
        assert!(gpu < cpu, "gpu {gpu:?} !< cpu {cpu:?}");
    }

    #[test]
    fn device_results_are_identical() {
        let p = LinearPolicy::new(8, 4, 1);
        let batch: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64 * 0.1; 8]).collect();
        let cpu = p.act_batch(&batch, Duration::ZERO, Device::Cpu);
        let gpu = p.act_batch(&batch, Duration::ZERO, Device::Gpu { speedup: 8.0 });
        assert_eq!(cpu, gpu);
    }

    #[test]
    fn policy_round_trips_through_codec() {
        let p = LinearPolicy::new(6, 3, 9);
        let bytes = encode_to_bytes(&p);
        let back: LinearPolicy = decode_from_slice(&bytes).unwrap();
        assert_eq!(p, back);
    }
}
