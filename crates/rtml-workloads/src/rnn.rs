//! Recurrent-network task graphs with heterogeneous cell costs (paper
//! Figure 2c).
//!
//! "Heterogeneous tasks in recurrent neural networks … the RNN consists
//! of different functions for each 'layer', each of which may require
//! different amounts of computation." The computation is a grid of
//! cells: cell `(l, t)` consumes the same layer's previous timestep
//! `(l, t-1)` and the previous layer's same timestep `(l-1, t)` — a
//! fine-grained dependency structure that BSP can only approximate with
//! anti-diagonal *waves* (a barrier per wave, each wave as slow as its
//! slowest cell), while a dataflow engine pipelines layers freely (R5).
//!
//! Three bit-identical implementations: [`run_serial`], [`run_bsp`]
//! (wavefront stages), and [`run_rtml`] (one task per cell, futures as
//! edges).

use std::time::{Duration, Instant};

use rtml_baselines::{Engine, StageTask};
use rtml_common::error::Result;
use rtml_common::impl_codec_struct;
use rtml_common::time::{deterministic_work, occupy};
use rtml_runtime::{Cluster, Driver, Func3, ObjectRef};

/// Grid parameters.
#[derive(Clone, Debug)]
pub struct RnnConfig {
    /// Layers (grid rows).
    pub layers: usize,
    /// Timesteps (grid columns).
    pub timesteps: usize,
    /// Cost of a layer-0 cell.
    pub base_cell_cost: Duration,
    /// Heterogeneity: layer `l` costs `base * (1 + l * spread)`.
    pub cost_spread: f64,
    /// Seed for boundary inputs.
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            layers: 4,
            timesteps: 8,
            base_cell_cost: Duration::from_millis(2),
            cost_spread: 0.75,
            seed: 0x5eed,
        }
    }
}

impl RnnConfig {
    /// The compute cost of a cell in layer `l`.
    pub fn cell_cost(&self, layer: usize) -> Duration {
        self.base_cell_cost
            .mul_f64(1.0 + layer as f64 * self.cost_spread)
    }

    /// Initial hidden state for layer `l` (the `t = -1` column).
    pub fn h0(&self, layer: usize) -> u64 {
        deterministic_work(self.seed ^ (layer as u64) << 8, 3)
    }

    /// Input for timestep `t` (the `l = -1` row).
    pub fn input(&self, t: usize) -> u64 {
        deterministic_work(self.seed ^ (t as u64) << 24, 3)
    }
}

/// Serializable cell description.
#[derive(Clone, Debug, PartialEq)]
pub struct CellParams {
    /// Layer index.
    pub layer: u32,
    /// Timestep index.
    pub t: u32,
    /// Compute cost in microseconds.
    pub cost_micros: u64,
}

impl_codec_struct!(CellParams {
    layer,
    t,
    cost_micros
});

/// The cell body, shared verbatim by all implementations: burns the
/// layer's compute cost and mixes the two inputs deterministically.
pub fn run_cell(params: &CellParams, left: u64, below: u64) -> u64 {
    occupy(Duration::from_micros(params.cost_micros));
    deterministic_work(
        left ^ below.rotate_left(17) ^ ((params.layer as u64) << 32 | params.t as u64),
        4,
    )
}

/// Result of a full grid evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct RnnResult {
    /// Fold of the top layer's outputs across time (bit-exact).
    pub checksum: u64,
    /// Cells computed.
    pub cells: usize,
    /// Wall-clock time.
    pub wall: Duration,
}

fn fold_outputs(outputs: impl IntoIterator<Item = u64>) -> u64 {
    outputs
        .into_iter()
        .fold(0xdeadbeefdeadbeef, |acc, v| deterministic_work(acc ^ v, 2))
}

/// Sequential reference implementation.
pub fn run_serial(config: &RnnConfig) -> RnnResult {
    let start = Instant::now();
    let (layers, timesteps) = (config.layers, config.timesteps);
    let mut grid = vec![vec![0u64; timesteps]; layers];
    for l in 0..layers {
        for t in 0..timesteps {
            let left = if t == 0 { config.h0(l) } else { grid[l][t - 1] };
            let below = if l == 0 {
                config.input(t)
            } else {
                grid[l - 1][t]
            };
            let params = CellParams {
                layer: l as u32,
                t: t as u32,
                cost_micros: config.cell_cost(l).as_micros() as u64,
            };
            grid[l][t] = run_cell(&params, left, below);
        }
    }
    RnnResult {
        checksum: fold_outputs(grid[layers - 1].iter().copied()),
        cells: layers * timesteps,
        wall: start.elapsed(),
    }
}

/// BSP wavefront: one stage per anti-diagonal `l + t = k`; a barrier
/// between waves. Heterogeneous layer costs make each wave as slow as
/// its most expensive cell — the structural cost the paper attributes
/// to forcing fine-grained dependencies into BSP stages.
pub fn run_bsp<E: Engine>(config: &RnnConfig, engine: &E) -> RnnResult {
    let start = Instant::now();
    let (layers, timesteps) = (config.layers, config.timesteps);
    let mut grid = vec![vec![0u64; timesteps]; layers];
    for wave in 0..(layers + timesteps - 1) {
        // Cells on this anti-diagonal.
        let cells: Vec<(usize, usize)> = (0..layers)
            .filter_map(|l| {
                let t = wave.checked_sub(l)?;
                (t < timesteps).then_some((l, t))
            })
            .collect();
        let stage: Vec<StageTask<((usize, usize), u64)>> = cells
            .iter()
            .map(|&(l, t)| {
                let left = if t == 0 { config.h0(l) } else { grid[l][t - 1] };
                let below = if l == 0 {
                    config.input(t)
                } else {
                    grid[l - 1][t]
                };
                let params = CellParams {
                    layer: l as u32,
                    t: t as u32,
                    cost_micros: config.cell_cost(l).as_micros() as u64,
                };
                Box::new(move || ((l, t), run_cell(&params, left, below)))
                    as StageTask<((usize, usize), u64)>
            })
            .collect();
        for ((l, t), value) in engine.run_stage(stage) {
            grid[l][t] = value;
        }
    }
    RnnResult {
        checksum: fold_outputs(grid[layers - 1].iter().copied()),
        cells: layers * timesteps,
        wall: start.elapsed(),
    }
}

/// The *natural* BSP batching of an RNN: one stage per timestep, with
/// the layer chain for that timestep computed sequentially inside the
/// stage (layers within a timestep are chain-dependent, so a
/// stage-per-timestep engine cannot parallelize them). This is how a
/// Spark-style system would actually express the computation; the
/// anti-diagonal wavefront of [`run_bsp`] already requires fine-grained
/// dependency tracking that BSP systems do not offer.
pub fn run_bsp_timestep<E: Engine>(config: &RnnConfig, engine: &E) -> RnnResult {
    let start = Instant::now();
    let (layers, timesteps) = (config.layers, config.timesteps);
    // prev[l] = h(l, t-1) carried between stages.
    let mut prev: Vec<u64> = (0..layers).map(|l| config.h0(l)).collect();
    let mut top_outputs = Vec::with_capacity(timesteps);
    for t in 0..timesteps {
        let input = config.input(t);
        let carried = prev.clone();
        let costs: Vec<u64> = (0..layers)
            .map(|l| config.cell_cost(l).as_micros() as u64)
            .collect();
        // One task: the whole layer chain for timestep t.
        let stage: Vec<StageTask<Vec<u64>>> = vec![Box::new(move || {
            let mut column = Vec::with_capacity(carried.len());
            let mut below = input;
            for (l, cost) in costs.iter().enumerate() {
                let params = CellParams {
                    layer: l as u32,
                    t: t as u32,
                    cost_micros: *cost,
                };
                let value = run_cell(&params, carried[l], below);
                column.push(value);
                below = value;
            }
            column
        })];
        let mut results = engine.run_stage(stage);
        prev = results.pop().expect("one task");
        top_outputs.push(prev[layers - 1]);
    }
    RnnResult {
        checksum: fold_outputs(top_outputs),
        cells: layers * timesteps,
        wall: start.elapsed(),
    }
}

/// The rtml cell task.
pub struct RnnFuncs {
    /// One grid cell.
    pub cell: Func3<CellParams, u64, u64, u64>,
}

impl RnnFuncs {
    /// Registers the cell function on `cluster`.
    pub fn register(cluster: &Cluster) -> RnnFuncs {
        RnnFuncs {
            cell: cluster.register_fn3("rnn_cell", |params: CellParams, left: u64, below: u64| {
                Ok(run_cell(&params, left, below))
            }),
        }
    }
}

/// Fine-grained dataflow: one task per cell, futures as edges. No
/// barriers anywhere — cheap layers race ahead of expensive ones.
pub fn run_rtml(config: &RnnConfig, driver: &Driver, funcs: &RnnFuncs) -> Result<RnnResult> {
    let start = Instant::now();
    let (layers, timesteps) = (config.layers, config.timesteps);
    let mut futures: Vec<Vec<Option<ObjectRef<u64>>>> = vec![vec![None; timesteps]; layers];
    for l in 0..layers {
        for t in 0..timesteps {
            let params = CellParams {
                layer: l as u32,
                t: t as u32,
                cost_micros: config.cell_cost(l).as_micros() as u64,
            };
            // Boundary values are inline arguments; interior edges are
            // futures (dataflow, R5).
            let fut = match (t, l) {
                (0, 0) => driver.submit3(&funcs.cell, params, config.h0(0), config.input(0))?,
                (0, _) => driver.submit3(
                    &funcs.cell,
                    params,
                    config.h0(l),
                    futures[l - 1][t].expect("below computed"),
                )?,
                (_, 0) => driver.submit3(
                    &funcs.cell,
                    params,
                    futures[l][t - 1].expect("left computed"),
                    config.input(t),
                )?,
                (_, _) => driver.submit3(
                    &funcs.cell,
                    params,
                    futures[l][t - 1].expect("left computed"),
                    futures[l - 1][t].expect("below computed"),
                )?,
            };
            futures[l][t] = Some(fut);
        }
    }
    let mut outputs = Vec::with_capacity(timesteps);
    for t in 0..timesteps {
        outputs.push(driver.get(&futures[layers - 1][t].expect("top row"))?);
    }
    Ok(RnnResult {
        checksum: fold_outputs(outputs),
        cells: layers * timesteps,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_baselines::{BspConfig, BspEngine, SerialEngine};
    use rtml_runtime::ClusterConfig;

    fn fast() -> RnnConfig {
        RnnConfig {
            layers: 3,
            timesteps: 5,
            base_cell_cost: Duration::ZERO,
            ..RnnConfig::default()
        }
    }

    #[test]
    fn serial_is_deterministic() {
        assert_eq!(run_serial(&fast()).checksum, run_serial(&fast()).checksum);
    }

    #[test]
    fn bsp_timestep_matches_serial() {
        let serial = run_serial(&fast());
        let per_timestep = run_bsp_timestep(&fast(), &SerialEngine);
        assert_eq!(serial.checksum, per_timestep.checksum);
        assert_eq!(per_timestep.cells, 15);
    }

    #[test]
    fn bsp_wavefront_matches_serial() {
        let serial = run_serial(&fast());
        let bsp = run_bsp(&fast(), &SerialEngine);
        assert_eq!(serial.checksum, bsp.checksum);
        let engine = BspEngine::new(BspConfig {
            workers: 4,
            per_task_overhead: Duration::ZERO,
            per_stage_overhead: Duration::ZERO,
        });
        let bsp_parallel = run_bsp(&fast(), &engine);
        assert_eq!(serial.checksum, bsp_parallel.checksum);
    }

    #[test]
    fn rtml_matches_serial() {
        let serial = run_serial(&fast());
        let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
        let funcs = RnnFuncs::register(&cluster);
        let driver = cluster.driver();
        let rtml = run_rtml(&fast(), &driver, &funcs).unwrap();
        assert_eq!(serial.checksum, rtml.checksum);
        assert_eq!(rtml.cells, 15);
        cluster.shutdown();
    }

    #[test]
    fn layer_costs_are_heterogeneous() {
        let config = RnnConfig::default();
        assert!(config.cell_cost(3) > config.cell_cost(0));
        assert_eq!(config.cell_cost(0), config.base_cell_cost);
    }

    #[test]
    fn different_seeds_change_checksums() {
        let a = run_serial(&fast());
        let b = run_serial(&RnnConfig {
            seed: 999,
            ..fast()
        });
        assert_ne!(a.checksum, b.checksum);
    }
}
