//! Streaming sensor fusion (paper Figure 2a).
//!
//! "Online processing of streaming sensory data to model the
//! environment": several sensors produce windows of samples at
//! heterogeneous processing costs (video >> IMU); each window's features
//! must be fused promptly — an end-to-end latency requirement (R1), not
//! a throughput one.
//!
//! [`run_rtml`] submits every window's whole graph (per-sensor feature
//! tasks + a fusion chain) without waiting, overlapping windows, and
//! observes completions with `wait` — per-window latency is the metric.
//! [`run_bsp`] processes windows one at a time with a barrier per window
//! (fusion cannot start until the slowest sensor of the window, and
//! window `w+1` cannot start until fusion `w` finishes).

use std::time::{Duration, Instant};

use rtml_baselines::{Engine, StageTask};
use rtml_common::error::Result;
use rtml_common::impl_codec_struct;
use rtml_common::time::{deterministic_work, occupy};
use rtml_runtime::{Cluster, Driver, Func2, ObjectRef};

/// Stream parameters.
#[derive(Clone, Debug)]
pub struct SensorConfig {
    /// Number of sensors.
    pub sensors: usize,
    /// Cost of sensor 0's per-window processing; sensor `i` costs
    /// `base * (1 + i)` (heterogeneity).
    pub base_cost: Duration,
    /// Cost of each pairwise fusion step.
    pub fuse_cost: Duration,
    /// Number of windows to stream.
    pub windows: usize,
    /// Seed for sample synthesis.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            sensors: 6,
            base_cost: Duration::from_millis(1),
            fuse_cost: Duration::from_micros(300),
            windows: 8,
            seed: 0xfade,
        }
    }
}

impl SensorConfig {
    /// Per-window processing cost of sensor `i`.
    pub fn sensor_cost(&self, sensor: usize) -> Duration {
        self.base_cost.mul_f64((1 + sensor) as f64)
    }
}

/// Serializable per-sensor task description.
#[derive(Clone, Debug, PartialEq)]
pub struct SenseParams {
    /// Sensor index.
    pub sensor: u32,
    /// Window index.
    pub window: u32,
    /// Processing cost in microseconds.
    pub cost_micros: u64,
    /// Stream seed.
    pub seed: u64,
}

impl_codec_struct!(SenseParams {
    sensor,
    window,
    cost_micros,
    seed
});

/// Per-sensor feature extraction (shared by all implementations).
pub fn run_sense(params: &SenseParams) -> u64 {
    occupy(Duration::from_micros(params.cost_micros));
    deterministic_work(
        params.seed ^ ((params.sensor as u64) << 32) ^ params.window as u64,
        8,
    )
}

/// Pairwise fusion step (shared by all implementations).
pub fn run_fuse(acc: u64, feature: u64, cost: Duration) -> u64 {
    occupy(cost);
    deterministic_work(acc ^ feature.rotate_left(23), 4)
}

/// Result of streaming all windows.
#[derive(Clone, Debug)]
pub struct SensorResult {
    /// Fold of fused window outputs (bit-exact across implementations).
    pub checksum: u64,
    /// Per-window end-to-end latency (submit → fused), in submit order.
    pub window_latencies: Vec<Duration>,
    /// Total wall-clock time.
    pub wall: Duration,
}

impl SensorResult {
    /// Mean per-window latency.
    pub fn mean_latency(&self) -> Duration {
        if self.window_latencies.is_empty() {
            return Duration::ZERO;
        }
        self.window_latencies.iter().sum::<Duration>() / self.window_latencies.len() as u32
    }

    /// Worst per-window latency.
    pub fn max_latency(&self) -> Duration {
        self.window_latencies
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

fn fold_windows(outputs: impl IntoIterator<Item = u64>) -> u64 {
    outputs
        .into_iter()
        .fold(0xfeedface, |acc, v| deterministic_work(acc ^ v, 2))
}

/// Windows processed strictly one after another with a stage barrier per
/// window (the BSP shape).
pub fn run_bsp<E: Engine>(config: &SensorConfig, engine: &E) -> SensorResult {
    let start = Instant::now();
    let mut fused = Vec::with_capacity(config.windows);
    let mut latencies = Vec::with_capacity(config.windows);
    for window in 0..config.windows {
        let window_start = Instant::now();
        let stage: Vec<StageTask<u64>> = (0..config.sensors)
            .map(|sensor| {
                let params = SenseParams {
                    sensor: sensor as u32,
                    window: window as u32,
                    cost_micros: config.sensor_cost(sensor).as_micros() as u64,
                    seed: config.seed,
                };
                Box::new(move || run_sense(&params)) as StageTask<u64>
            })
            .collect();
        let features = engine.run_stage(stage);
        let mut acc = 0u64;
        for feature in features {
            acc = run_fuse(acc, feature, config.fuse_cost);
        }
        fused.push(acc);
        latencies.push(window_start.elapsed());
    }
    SensorResult {
        checksum: fold_windows(fused),
        window_latencies: latencies,
        wall: start.elapsed(),
    }
}

/// The rtml task functions.
pub struct SensorFuncs {
    /// Feature extraction.
    pub sense: Func2<SenseParams, u64, u64>,
    /// Pairwise fusion (`cost_micros` inline).
    pub fuse: Func2<u64, u64, u64>,
}

impl SensorFuncs {
    /// Registers the stream functions on `cluster`. The fuse cost is
    /// captured at registration time.
    pub fn register(cluster: &Cluster, fuse_cost: Duration) -> SensorFuncs {
        SensorFuncs {
            sense: cluster.register_fn2("sensor_sense", |params: SenseParams, _tag: u64| {
                Ok(run_sense(&params))
            }),
            fuse: cluster.register_fn2("sensor_fuse", move |acc: u64, feature: u64| {
                Ok(run_fuse(acc, feature, fuse_cost))
            }),
        }
    }
}

/// Dataflow streaming: every window's graph is submitted up front;
/// windows overlap freely; completions are observed with `wait` so each
/// window's latency is measured at the moment its fusion seals.
pub fn run_rtml(
    config: &SensorConfig,
    driver: &Driver,
    funcs: &SensorFuncs,
) -> Result<SensorResult> {
    let start = Instant::now();
    let mut fusion_futs: Vec<ObjectRef<u64>> = Vec::with_capacity(config.windows);
    let mut submit_times = Vec::with_capacity(config.windows);
    for window in 0..config.windows {
        submit_times.push(start.elapsed());
        let mut acc: Option<ObjectRef<u64>> = None;
        for sensor in 0..config.sensors {
            let params = SenseParams {
                sensor: sensor as u32,
                window: window as u32,
                cost_micros: config.sensor_cost(sensor).as_micros() as u64,
                seed: config.seed,
            };
            let feature = driver.submit2(&funcs.sense, params, 0u64)?;
            acc = Some(match acc {
                None => {
                    // Seed the fold with acc = 0 fused with the first
                    // feature, matching the BSP order exactly.
                    driver.submit2(&funcs.fuse, 0u64, &feature)?
                }
                Some(prev) => driver.submit2(&funcs.fuse, &prev, &feature)?,
            });
        }
        fusion_futs.push(acc.expect("at least one sensor"));
    }

    // Observe completions as they happen.
    let mut latencies = vec![Duration::ZERO; config.windows];
    let mut pending: Vec<ObjectRef<u64>> = fusion_futs.clone();
    while !pending.is_empty() {
        let (ready, rest) = driver.wait(&pending, 1, Duration::from_secs(60));
        let now = start.elapsed();
        for fut in &ready {
            let index = fusion_futs
                .iter()
                .position(|f| f == fut)
                .expect("known fusion");
            latencies[index] = now - submit_times[index];
        }
        pending = rest;
    }

    let mut fused = Vec::with_capacity(config.windows);
    for fut in &fusion_futs {
        fused.push(driver.get(fut)?);
    }
    Ok(SensorResult {
        checksum: fold_windows(fused),
        window_latencies: latencies,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_baselines::SerialEngine;
    use rtml_runtime::ClusterConfig;

    fn fast() -> SensorConfig {
        SensorConfig {
            sensors: 3,
            base_cost: Duration::ZERO,
            fuse_cost: Duration::ZERO,
            windows: 4,
            ..SensorConfig::default()
        }
    }

    #[test]
    fn bsp_is_deterministic() {
        let a = run_bsp(&fast(), &SerialEngine);
        let b = run_bsp(&fast(), &SerialEngine);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.window_latencies.len(), 4);
    }

    #[test]
    fn rtml_matches_bsp_checksum() {
        let bsp = run_bsp(&fast(), &SerialEngine);
        let cluster = Cluster::start(ClusterConfig::local(2, 3)).unwrap();
        let funcs = SensorFuncs::register(&cluster, Duration::ZERO);
        let driver = cluster.driver();
        let rtml = run_rtml(&fast(), &driver, &funcs).unwrap();
        assert_eq!(bsp.checksum, rtml.checksum);
        assert_eq!(rtml.window_latencies.len(), 4);
        assert!(rtml.window_latencies.iter().all(|l| *l > Duration::ZERO));
        cluster.shutdown();
    }

    #[test]
    fn sensor_costs_are_heterogeneous() {
        let config = SensorConfig::default();
        assert_eq!(config.sensor_cost(0), Duration::from_millis(1));
        assert_eq!(config.sensor_cost(5), Duration::from_millis(6));
    }

    #[test]
    fn latency_helpers() {
        let result = SensorResult {
            checksum: 0,
            window_latencies: vec![
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(6),
            ],
            wall: Duration::from_millis(10),
        };
        assert_eq!(result.mean_latency(), Duration::from_millis(4));
        assert_eq!(result.max_latency(), Duration::from_millis(6));
    }
}
