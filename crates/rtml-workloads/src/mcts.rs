//! Monte Carlo tree search with dynamically-created simulation tasks
//! (paper Figure 2b).
//!
//! "Dynamic graph construction for Monte Carlo tree search (here tasks
//! are simulations exploring sequences of actions)." MCTS is the paper's
//! canonical R3 workload: which simulations to run next depends on the
//! results of earlier ones, so the task graph cannot be declared up
//! front.
//!
//! Two implementations:
//! - [`run_serial`] — the textbook select → expand → simulate →
//!   backpropagate loop;
//! - [`run_rtml`] — parallel MCTS with virtual loss: up to
//!   `parallelism` simulation tasks are in flight; every completion
//!   (observed via `wait`, completion order) immediately backpropagates
//!   and launches the next most-promising simulation (R3 in action).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rtml_common::error::Result;
use rtml_common::impl_codec_struct;
use rtml_runtime::{Cluster, Driver, Func1, ObjectRef};

use crate::atari::{AtariConfig, AtariSim};

/// Search parameters.
#[derive(Clone, Debug)]
pub struct MctsConfig {
    /// Actions available at every state.
    pub actions: u32,
    /// Frames simulated per rollout (sets task duration).
    pub rollout_frames: u32,
    /// Compute per frame.
    pub frame_cost: Duration,
    /// Total simulations (the search budget).
    pub budget: usize,
    /// Maximum simulations in flight (rtml variant).
    pub parallelism: usize,
    /// Observation dimension (for the underlying sim).
    pub obs_dim: usize,
    /// UCB exploration constant.
    pub ucb_c: f64,
    /// Root seed.
    pub seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            actions: 4,
            rollout_frames: 8,
            frame_cost: Duration::from_micros(700),
            budget: 64,
            parallelism: 8,
            obs_dim: 8,
            ucb_c: 1.4,
            seed: 0x7ee5,
        }
    }
}

impl MctsConfig {
    fn atari(&self) -> AtariConfig {
        AtariConfig {
            frame_cost: self.frame_cost,
            obs_dim: self.obs_dim,
            max_steps: u32::MAX,
        }
    }
}

/// Serializable description of one rollout task.
#[derive(Clone, Debug, PartialEq)]
pub struct RolloutParams {
    /// Simulator state to roll out from.
    pub state: u64,
    /// Steps already taken to reach the state.
    pub steps: u32,
    /// Frames to simulate.
    pub frames: u32,
    /// Compute per frame, microseconds.
    pub frame_cost_micros: u64,
    /// Observation dimension.
    pub obs_dim: u32,
    /// Action count (rollout policy cycles through them).
    pub actions: u32,
}

impl_codec_struct!(RolloutParams {
    state,
    steps,
    frames,
    frame_cost_micros,
    obs_dim,
    actions
});

/// The rollout task body (shared by serial and rtml variants).
pub fn run_rollout(params: &RolloutParams) -> f64 {
    let config = AtariConfig {
        frame_cost: Duration::from_micros(params.frame_cost_micros),
        obs_dim: params.obs_dim as usize,
        max_steps: u32::MAX,
    };
    let mut sim = AtariSim::from_state(config, params.state, params.steps);
    let actions = params.actions.max(1);
    let mut i = 0u32;
    let (_obs, reward) = sim.rollout(params.frames, move |obs| {
        // Deterministic rollout policy: mix the observation's sign bits
        // with a cycling counter.
        let bias = obs.first().map(|v| (*v >= 0.0) as u32).unwrap_or(0);
        i = i.wrapping_add(1);
        (i.wrapping_add(bias)) % actions
    });
    reward
}

struct Node {
    state: u64,
    steps: u32,
    visits: u32,
    value_sum: f64,
    /// children[action] = node index.
    children: Vec<Option<usize>>,
    parent: Option<usize>,
}

/// The search tree (arena-allocated).
pub struct Tree {
    nodes: Vec<Node>,
    actions: u32,
}

impl Tree {
    fn new(root_state: u64, actions: u32) -> Tree {
        Tree {
            nodes: vec![Node {
                state: root_state,
                steps: 0,
                visits: 0,
                value_sum: 0.0,
                children: vec![None; actions as usize],
                parent: None,
            }],
            actions,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// UCB1 descent from the root; expands the first unexpanded action
    /// encountered (paying one simulated frame to compute the child
    /// state). Returns the node index to evaluate.
    fn select_and_expand(&mut self, config: &MctsConfig) -> usize {
        let mut idx = 0usize;
        loop {
            // Unexpanded action?
            if let Some(action) = self.nodes[idx].children.iter().position(|c| c.is_none()) {
                let parent = &self.nodes[idx];
                let mut sim = AtariSim::from_state(config.atari(), parent.state, parent.steps);
                sim.step(action as u32);
                let child = Node {
                    state: sim.state(),
                    steps: sim.steps(),
                    visits: 0,
                    value_sum: 0.0,
                    children: vec![None; self.actions as usize],
                    parent: Some(idx),
                };
                self.nodes.push(child);
                let child_idx = self.nodes.len() - 1;
                self.nodes[idx].children[action] = Some(child_idx);
                return child_idx;
            }
            // Fully expanded: UCB descent.
            let parent_visits = self.nodes[idx].visits.max(1) as f64;
            let mut best = None;
            let mut best_score = f64::NEG_INFINITY;
            for child in self.nodes[idx].children.iter().flatten() {
                let node = &self.nodes[*child];
                let visits = node.visits.max(1) as f64;
                let mean = node.value_sum / visits;
                let score = mean + config.ucb_c * (parent_visits.ln() / visits).sqrt();
                if score > best_score {
                    best_score = score;
                    best = Some(*child);
                }
            }
            idx = best.expect("fully expanded node has children");
        }
    }

    fn backpropagate(&mut self, mut idx: usize, value: f64) {
        loop {
            let node = &mut self.nodes[idx];
            node.visits += 1;
            node.value_sum += value;
            match node.parent {
                Some(parent) => idx = parent,
                None => return,
            }
        }
    }

    /// Virtual loss: pre-charge a visit with zero value so concurrent
    /// selections diversify.
    fn apply_virtual_loss(&mut self, mut idx: usize) {
        loop {
            self.nodes[idx].visits += 1;
            match self.nodes[idx].parent {
                Some(parent) => idx = parent,
                None => return,
            }
        }
    }

    /// Reverts a virtual loss and applies the real value.
    fn commit_result(&mut self, mut idx: usize, value: f64) {
        loop {
            self.nodes[idx].value_sum += value;
            match self.nodes[idx].parent {
                Some(parent) => idx = parent,
                None => return,
            }
        }
    }

    /// The root action with the most visits.
    pub fn best_action(&self) -> u32 {
        let mut best = 0u32;
        let mut best_visits = 0;
        for (action, child) in self.nodes[0].children.iter().enumerate() {
            if let Some(idx) = child {
                if self.nodes[*idx].visits > best_visits {
                    best_visits = self.nodes[*idx].visits;
                    best = action as u32;
                }
            }
        }
        best
    }

    /// Visit counts per root action.
    pub fn root_visits(&self) -> Vec<u32> {
        self.nodes[0]
            .children
            .iter()
            .map(|c| c.map(|i| self.nodes[i].visits).unwrap_or(0))
            .collect()
    }
}

/// Search outcome.
#[derive(Debug)]
pub struct MctsResult {
    /// Most-visited root action.
    pub best_action: u32,
    /// Simulations executed.
    pub simulations: usize,
    /// Nodes in the tree.
    pub tree_size: usize,
    /// Wall-clock time.
    pub wall: Duration,
}

/// Textbook sequential MCTS.
pub fn run_serial(config: &MctsConfig) -> MctsResult {
    let start = Instant::now();
    let root = AtariSim::new(config.atari(), config.seed);
    let mut tree = Tree::new(root.state(), config.actions);
    for _ in 0..config.budget {
        let leaf = tree.select_and_expand(config);
        let params = RolloutParams {
            state: tree.nodes[leaf].state,
            steps: tree.nodes[leaf].steps,
            frames: config.rollout_frames,
            frame_cost_micros: config.frame_cost.as_micros() as u64,
            obs_dim: config.obs_dim as u32,
            actions: config.actions,
        };
        let value = run_rollout(&params);
        tree.backpropagate(leaf, value);
    }
    MctsResult {
        best_action: tree.best_action(),
        simulations: config.budget,
        tree_size: tree.len(),
        wall: start.elapsed(),
    }
}

/// The rtml task function for rollouts.
pub struct MctsFuncs {
    /// Rollout evaluation task.
    pub rollout: Func1<RolloutParams, f64>,
}

impl MctsFuncs {
    /// Registers the rollout function on `cluster`.
    pub fn register(cluster: &Cluster) -> MctsFuncs {
        MctsFuncs {
            rollout: cluster.register_fn1("mcts_rollout", |params: RolloutParams| {
                Ok(run_rollout(&params))
            }),
        }
    }
}

/// Parallel MCTS on rtml: keeps `parallelism` simulations in flight and
/// grows the tree adaptively from completions (in completion order, via
/// `wait`).
pub fn run_rtml(config: &MctsConfig, driver: &Driver, funcs: &MctsFuncs) -> Result<MctsResult> {
    let start = Instant::now();
    let root = AtariSim::new(config.atari(), config.seed);
    let mut tree = Tree::new(root.state(), config.actions);
    let mut launched = 0usize;
    let mut completed = 0usize;
    let mut in_flight: HashMap<ObjectRef<f64>, usize> = HashMap::new();

    while completed < config.budget {
        // Keep the pipeline full.
        while launched < config.budget && in_flight.len() < config.parallelism {
            let leaf = tree.select_and_expand(config);
            tree.apply_virtual_loss(leaf);
            let params = RolloutParams {
                state: tree.nodes[leaf].state,
                steps: tree.nodes[leaf].steps,
                frames: config.rollout_frames,
                frame_cost_micros: config.frame_cost.as_micros() as u64,
                obs_dim: config.obs_dim as u32,
                actions: config.actions,
            };
            let fut = driver.submit1(&funcs.rollout, params)?;
            in_flight.insert(fut, leaf);
            launched += 1;
        }
        // React to whichever simulation finishes first.
        let pending: Vec<ObjectRef<f64>> = in_flight.keys().copied().collect();
        let (ready, _) = driver.wait(&pending, 1, Duration::from_secs(60));
        for fut in ready {
            let leaf = in_flight.remove(&fut).expect("tracked future");
            let value = driver.get(&fut)?;
            tree.commit_result(leaf, value);
            completed += 1;
        }
    }

    Ok(MctsResult {
        best_action: tree.best_action(),
        simulations: completed,
        tree_size: tree.len(),
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtml_runtime::ClusterConfig;

    fn fast() -> MctsConfig {
        MctsConfig {
            frame_cost: Duration::ZERO,
            budget: 32,
            parallelism: 4,
            ..MctsConfig::default()
        }
    }

    #[test]
    fn serial_runs_budget_simulations() {
        let result = run_serial(&fast());
        assert_eq!(result.simulations, 32);
        // Every simulation expands one node, plus the root.
        assert_eq!(result.tree_size, 33);
        assert!(result.best_action < 4);
    }

    #[test]
    fn serial_is_deterministic() {
        let a = run_serial(&fast());
        let b = run_serial(&fast());
        assert_eq!(a.best_action, b.best_action);
        assert_eq!(a.tree_size, b.tree_size);
    }

    #[test]
    fn rollout_task_is_deterministic() {
        let params = RolloutParams {
            state: 12345,
            steps: 3,
            frames: 10,
            frame_cost_micros: 0,
            obs_dim: 8,
            actions: 4,
        };
        assert_eq!(
            run_rollout(&params).to_bits(),
            run_rollout(&params).to_bits()
        );
    }

    #[test]
    fn visits_concentrate_on_best_root_action() {
        let result = run_serial(&MctsConfig {
            budget: 128,
            ..fast()
        });
        let _ = result;
        // UCB must visit every root action at least once.
        let config = fast();
        let root = AtariSim::new(config.atari(), config.seed);
        let mut tree = Tree::new(root.state(), config.actions);
        for _ in 0..64 {
            let leaf = tree.select_and_expand(&config);
            let value = (leaf % 7) as f64 / 7.0;
            tree.backpropagate(leaf, value);
        }
        let visits = tree.root_visits();
        assert!(visits.iter().all(|v| *v > 0), "{visits:?}");
    }

    #[test]
    fn parallel_mcts_completes_budget_dynamically() {
        let cluster = Cluster::start(ClusterConfig::local(2, 4)).unwrap();
        let funcs = MctsFuncs::register(&cluster);
        let driver = cluster.driver();
        let config = MctsConfig {
            frame_cost: Duration::from_micros(200),
            budget: 24,
            parallelism: 6,
            ..MctsConfig::default()
        };
        let result = run_rtml(&config, &driver, &funcs).unwrap();
        assert_eq!(result.simulations, 24);
        assert_eq!(result.tree_size, 25);
        assert!(result.best_action < config.actions);
        cluster.shutdown();
    }
}
