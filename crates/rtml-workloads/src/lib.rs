//! The workloads behind the paper's figures and evaluation.
//!
//! | Module | Paper reference | What it models |
//! |---|---|---|
//! | [`atari`] | §4.2 | A deterministic arcade-style environment with a real per-frame CPU cost (the ALE substitute; see DESIGN.md substitutions) |
//! | [`policy`] | §4.2 | A linear policy whose batched evaluation runs a real matrix product, faster on a "GPU" (a resource-gated speedup) |
//! | [`rl`] | §4.2 | The RL training loop that yields the 63x comparison: serial vs BSP vs rtml, plus the `wait`-pipelined variant (E6) |
//! | [`mcts`] | Fig. 2b | Monte Carlo tree search with dynamically created simulation tasks (R3) |
//! | [`rnn`] | Fig. 2c | A recurrent network's (layer, timestep) grid with heterogeneous cell costs and fine-grained dataflow deps (R4, R5) |
//! | [`sensors`] | Fig. 2a | Heterogeneous streaming sensor fusion with per-window latency accounting (R1) |
//!
//! Every workload is **deterministic given its seed**: the serial, BSP,
//! and rtml implementations produce bit-identical checksums, which is
//! both a cross-engine correctness test and the property lineage replay
//! needs.

pub mod atari;
pub mod mcts;
pub mod policy;
pub mod rl;
pub mod rnn;
pub mod sensors;
