//! Monotonic timestamps, stopwatches, and calibrated busy-work.
//!
//! All event-log timestamps are nanoseconds since a process-wide epoch
//! (the first call into this module), so timestamps from different threads
//! and components are directly comparable.
//!
//! [`busy_work`] emulates a compute kernel of known duration by spinning,
//! which — unlike `thread::sleep` — occupies a CPU the way a real
//! simulation step or neural-network layer would. The paper's RL
//! experiment depends on tasks that genuinely consume ~7 ms of CPU.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Returns the process-wide monotonic epoch.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process epoch.
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Microseconds elapsed since the process epoch.
pub fn now_micros() -> u64 {
    now_nanos() / 1_000
}

/// A simple stopwatch for measuring elapsed wall time.
///
/// # Examples
///
/// ```
/// use rtml_common::time::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_nanos() < 1_000_000_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in whole microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.elapsed().as_micros() as u64
    }

    /// Elapsed time in seconds as a float.
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Spins the CPU for approximately `duration`.
///
/// The loop checks `Instant::now()` in batches to keep the timing overhead
/// small while still terminating promptly. Used by the workload crates to
/// model simulation steps and NN layers with real CPU consumption.
pub fn busy_work(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let deadline = Instant::now() + duration;
    // `black_box` prevents the spin from being optimized away.
    let mut x = 0u64;
    loop {
        for _ in 0..64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
        if Instant::now() >= deadline {
            break;
        }
    }
}

/// Occupies the calling worker for `duration`, modelling a compute
/// kernel of known cost.
///
/// Durations of 200 µs and above use `thread::sleep`; shorter ones spin
/// for precision. Sleeping (rather than burning cycles) means a
/// simulated kernel occupies *its worker* without contending for host
/// CPUs — so an 8-worker cluster completes eight 7 ms kernels in ~7 ms
/// even on a single-core CI machine, exactly as it would on an 8-core
/// testbed. This is the substitution that makes the paper's speedup
/// *shapes* reproducible on arbitrary hardware (see DESIGN.md); use
/// [`busy_work`] instead when real CPU pressure is the point.
pub fn occupy(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    if duration < Duration::from_micros(200) {
        busy_work(duration);
    } else {
        std::thread::sleep(duration);
    }
}

/// Deterministic pseudo-compute: performs `iters` rounds of integer mixing
/// and returns the folded result. Unlike [`busy_work`], the amount of work
/// is fixed rather than the wall time, so results are reproducible across
/// machines — used where lineage replay must produce identical outputs.
pub fn deterministic_work(seed: u64, iters: u64) -> u64 {
    let mut x = seed ^ 0x9e3779b97f4a7c15;
    for i in 0..iters {
        x ^= i;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_are_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn busy_work_takes_about_right() {
        let sw = Stopwatch::start();
        busy_work(Duration::from_millis(5));
        let elapsed = sw.elapsed();
        assert!(elapsed >= Duration::from_millis(5));
        // Allow generous slack for noisy CI machines.
        assert!(elapsed < Duration::from_millis(200), "elapsed={elapsed:?}");
    }

    #[test]
    fn busy_work_zero_returns_immediately() {
        let sw = Stopwatch::start();
        busy_work(Duration::ZERO);
        assert!(sw.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn deterministic_work_is_deterministic() {
        assert_eq!(deterministic_work(7, 1000), deterministic_work(7, 1000));
        assert_ne!(deterministic_work(7, 1000), deterministic_work(8, 1000));
        assert_ne!(deterministic_work(7, 1000), deterministic_work(7, 1001));
    }
}
