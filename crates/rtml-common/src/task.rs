//! Task specifications: the unit of work exchanged between workers,
//! schedulers, and the control plane.
//!
//! A [`TaskSpec`] is fully self-describing and serializable: it names the
//! function (by [`FunctionId`]), carries the arguments (inline values or
//! object references — the paper's §3.1 item 2), the number of return
//! objects, and the resource demand. Because the spec is durable in the
//! task table, any task can be re-executed after a failure: the spec *is*
//! the lineage record.

use bytes::Bytes;

use crate::codec::{Codec, Reader, Writer};
use crate::error::{Error, Result};
use crate::ids::{ActorId, FunctionId, NodeId, ObjectId, TaskId, WorkerId};
use crate::resources::Resources;

/// An argument to a task: either an inline encoded value or a reference to
/// an object produced by another task (a dataflow edge, R5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgSpec {
    /// An immediate value, already encoded.
    Value(Bytes),
    /// A dependency on the object with this ID.
    ObjectRef(ObjectId),
}

impl ArgSpec {
    /// The object dependency carried by this argument, if any.
    pub fn dependency(&self) -> Option<ObjectId> {
        match self {
            ArgSpec::Value(_) => None,
            ArgSpec::ObjectRef(id) => Some(*id),
        }
    }
}

impl Codec for ArgSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            ArgSpec::Value(bytes) => {
                w.put_u8(0);
                bytes.encode(w);
            }
            ArgSpec::ObjectRef(id) => {
                w.put_u8(1);
                id.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.take_u8()? {
            0 => Ok(ArgSpec::Value(Bytes::decode(r)?)),
            1 => Ok(ArgSpec::ObjectRef(ObjectId::decode(r)?)),
            other => Err(Error::Codec(format!("invalid ArgSpec tag {other}"))),
        }
    }
}

/// A complete, re-executable description of one task invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Unique, deterministic task identifier.
    pub task_id: TaskId,
    /// Function to invoke (function-table key).
    pub function: FunctionId,
    /// Arguments in positional order.
    pub args: Vec<ArgSpec>,
    /// Number of objects the task returns (IDs derived from `task_id`).
    pub num_returns: u32,
    /// Resource demand for admission control and placement (R4).
    pub resources: Resources,
    /// Node on which the task was submitted (locality hint and the local
    /// scheduler that first owns it).
    pub submitter_node: NodeId,
    /// Execution attempt; bumped on lineage reconstruction.
    pub attempt: u32,
    /// Actor binding: actor-method tasks must run on the worker currently
    /// hosting the actor and execute in submission (sequence) order.
    pub actor: Option<ActorId>,
}

impl TaskSpec {
    /// Creates a task spec with a single return object and default
    /// metadata. Convenience for tests and simple submissions.
    pub fn simple(task_id: TaskId, function: FunctionId, args: Vec<ArgSpec>) -> Self {
        TaskSpec {
            task_id,
            function,
            args,
            num_returns: 1,
            resources: Resources::cpu(1.0),
            submitter_node: NodeId(0),
            attempt: 0,
            actor: None,
        }
    }

    /// IDs of the objects this task will produce, in return order.
    pub fn return_ids(&self) -> Vec<ObjectId> {
        (0..self.num_returns)
            .map(|i| self.task_id.return_object(i))
            .collect()
    }

    /// Iterates over the task's object dependencies (arguments that are
    /// futures).
    pub fn dependencies(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.args.iter().filter_map(ArgSpec::dependency)
    }

    /// Number of object dependencies.
    pub fn dependency_count(&self) -> usize {
        self.dependencies().count()
    }
}

impl Codec for TaskSpec {
    fn encode(&self, w: &mut Writer) {
        self.task_id.encode(w);
        self.function.encode(w);
        self.args.encode(w);
        w.put_u32(self.num_returns);
        self.resources.encode(w);
        self.submitter_node.encode(w);
        w.put_u32(self.attempt);
        self.actor.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TaskSpec {
            task_id: TaskId::decode(r)?,
            function: FunctionId::decode(r)?,
            args: Vec::<ArgSpec>::decode(r)?,
            num_returns: r.take_u32()?,
            resources: Resources::decode(r)?,
            submitter_node: NodeId::decode(r)?,
            attempt: r.take_u32()?,
            actor: Option::<ActorId>::decode(r)?,
        })
    }
}

/// Lifecycle state of a task, as recorded in the task table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted; not yet owned by any scheduler queue.
    Submitted,
    /// Queued at a node's local scheduler.
    Queued(NodeId),
    /// Spilled to the global scheduler, awaiting placement.
    Spilled,
    /// Running on a specific worker.
    Running(WorkerId),
    /// Finished; return objects sealed.
    Finished,
    /// Failed with an application error (not retried by lineage).
    Failed(String),
    /// Lost to a worker or node failure; eligible for reconstruction.
    Lost,
}

impl TaskState {
    /// Whether this state is terminal (no further transitions expected
    /// without an explicit resubmission).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TaskState::Finished | TaskState::Failed(_) | TaskState::Lost
        )
    }
}

impl Codec for TaskState {
    fn encode(&self, w: &mut Writer) {
        match self {
            TaskState::Submitted => w.put_u8(0),
            TaskState::Queued(node) => {
                w.put_u8(1);
                node.encode(w);
            }
            TaskState::Spilled => w.put_u8(2),
            TaskState::Running(worker) => {
                w.put_u8(3);
                worker.encode(w);
            }
            TaskState::Finished => w.put_u8(4),
            TaskState::Failed(msg) => {
                w.put_u8(5);
                msg.encode(w);
            }
            TaskState::Lost => w.put_u8(6),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => TaskState::Submitted,
            1 => TaskState::Queued(NodeId::decode(r)?),
            2 => TaskState::Spilled,
            3 => TaskState::Running(WorkerId::decode(r)?),
            4 => TaskState::Finished,
            5 => TaskState::Failed(String::decode(r)?),
            6 => TaskState::Lost,
            other => return Err(Error::Codec(format!("invalid TaskState tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_bytes};
    use crate::ids::DriverId;

    fn sample_spec() -> TaskSpec {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let parent_out = root.child(0).return_object(0);
        TaskSpec {
            task_id: root.child(1),
            function: FunctionId::from_name("f"),
            args: vec![
                ArgSpec::Value(Bytes::from_static(&[1, 2, 3])),
                ArgSpec::ObjectRef(parent_out),
            ],
            num_returns: 2,
            resources: Resources::new(1.0, 0.5),
            submitter_node: NodeId(3),
            attempt: 1,
            actor: None,
        }
    }

    #[test]
    fn spec_round_trips() {
        let spec = sample_spec();
        let bytes = encode_to_bytes(&spec);
        let back: TaskSpec = decode_from_slice(&bytes).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn return_ids_are_derived_and_ordered() {
        let spec = sample_spec();
        let ids = spec.return_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], spec.task_id.return_object(0));
        assert_eq!(ids[1], spec.task_id.return_object(1));
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn dependencies_skip_inline_values() {
        let spec = sample_spec();
        let deps: Vec<_> = spec.dependencies().collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(spec.dependency_count(), 1);
    }

    #[test]
    fn states_round_trip() {
        for state in [
            TaskState::Submitted,
            TaskState::Queued(NodeId(2)),
            TaskState::Spilled,
            TaskState::Running(WorkerId::new(NodeId(1), 4)),
            TaskState::Finished,
            TaskState::Failed("boom".into()),
            TaskState::Lost,
        ] {
            let bytes = encode_to_bytes(&state);
            let back: TaskState = decode_from_slice(&bytes).unwrap();
            assert_eq!(state, back);
        }
    }

    #[test]
    fn terminal_states() {
        assert!(TaskState::Finished.is_terminal());
        assert!(TaskState::Failed("x".into()).is_terminal());
        assert!(TaskState::Lost.is_terminal());
        assert!(!TaskState::Submitted.is_terminal());
        assert!(!TaskState::Running(WorkerId::new(NodeId(0), 0)).is_terminal());
    }

    #[test]
    fn actor_binding_round_trips() {
        let mut spec = sample_spec();
        let root = TaskId::driver_root(DriverId::from_index(0));
        spec.actor = Some(root.actor(0));
        let bytes = encode_to_bytes(&spec);
        let back: TaskSpec = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.actor, spec.actor);
    }
}
