//! Lightweight concurrent metrics: counters and log-bucketed histograms.
//!
//! The benchmark harness and the schedulers use these to report latency
//! distributions (p50/p90/p99) without external dependencies. Histograms
//! use power-of-two buckets from 1 ns to ~2.3 hours, giving ≤ 2x relative
//! error on percentile estimates — plenty for systems benchmarking.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two histogram buckets (covers 1ns..2^43ns ≈ 2.4h).
const BUCKETS: usize = 44;

/// A monotonically increasing counter, safe to share across threads.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A concurrent log-bucketed histogram of `u64` samples (typically
/// nanoseconds).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Bucket b holds values in [2^b, 2^(b+1)); value 0 goes to bucket 0.
        (64 - value.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every sample of `snap` into this histogram, bucket-wise —
    /// how per-node latency histograms fold into one cluster-wide
    /// distribution (bucket layouts are identical by construction).
    pub fn merge_snapshot(&self, snap: &Snapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i.min(BUCKETS - 1)].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> Snapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Snapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.snapshot())
    }
}

/// An immutable view of a [`Histogram`] at one point in time.
#[derive(Clone)]
pub struct Snapshot {
    count: u64,
    sum: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Snapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimates the `q`-quantile (0.0..=1.0). Returns the geometric
    /// midpoint of the bucket containing the quantile; 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 1u64 << i;
                let hi = lo << 1;
                let mid = lo + (hi - lo) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Snapshot{{n={}, mean={:.0}, p50={}, p99={}, max={}}}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max
        )
    }
}

/// Formats a nanosecond quantity as a human-readable duration.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        // p50 of uniform 1k..1M should be within 2x of 500k.
        let p50 = s.p50();
        assert!(p50 >= 250_000 && p50 <= 1_000_000, "p50={p50}");
        assert!(s.p99() >= s.p50());
        assert_eq!(s.max(), 1_000_000);
        let mean = s.mean();
        assert!((mean - 500_500.0 * 1.0).abs() < 1_000.0, "mean={mean}");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut prev = 0;
        for shift in 0..63 {
            let idx = Histogram::bucket_index(1u64 << shift);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn merge_snapshot_folds_distributions() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
            b.record(v * 1_000_000);
        }
        a.merge_snapshot(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count(), 200);
        assert_eq!(s.max(), 100_000_000);
        // The merged p99 lives in b's range, the p50 straddles both.
        assert!(s.p99() >= 1_000_000);
        let empty = Histogram::new();
        empty.merge_snapshot(&Histogram::new().snapshot());
        assert_eq!(empty.snapshot().count(), 0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..10_000u64 {
                    h.record(v);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(500), "500 ns");
        assert_eq!(fmt_nanos(1_500), "1.5 µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50 ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00 s");
    }
}
