//! Lightweight concurrent metrics: counters, log-bucketed histograms,
//! and a registry that unifies them behind one sampling surface.
//!
//! The benchmark harness and the schedulers use these to report latency
//! distributions (p50/p90/p99) without external dependencies. Histograms
//! use power-of-two buckets from 1 ns to ~2.3 hours, giving ≤ 2x relative
//! error on percentile estimates — plenty for systems benchmarking.
//!
//! [`MetricsRegistry`] is the sensing half of the observability plane:
//! each per-plane counter struct registers its values once (by closure,
//! so existing `Arc`'d stats structs need no restructuring), and a
//! periodic sampler reads [`MetricsRegistry::sample`] — a deterministic,
//! name-sorted flat list of `u64`s — into the telemetry time-series
//! table.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets (covers 1ns..2^43ns ≈ 2.4h).
const BUCKETS: usize = 44;

/// A monotonically increasing counter, safe to share across threads.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A concurrent log-bucketed histogram of `u64` samples (typically
/// nanoseconds).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Bucket b holds values in [2^b, 2^(b+1)); value 0 goes to bucket 0.
        (64 - value.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every sample of `snap` into this histogram, bucket-wise —
    /// how per-node latency histograms fold into one cluster-wide
    /// distribution (bucket layouts are identical by construction).
    pub fn merge_snapshot(&self, snap: &Snapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i.min(BUCKETS - 1)].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> Snapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Snapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.snapshot())
    }
}

/// An immutable view of a [`Histogram`] at one point in time.
#[derive(Clone, PartialEq, Eq)]
pub struct Snapshot {
    count: u64,
    sum: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Snapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Estimates the `q`-quantile (0.0..=1.0). Returns the geometric
    /// midpoint of the bucket containing the quantile; 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 1u64 << i;
                let hi = lo << 1;
                let mid = lo + (hi - lo) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Snapshot{{n={}, mean={:.0}, p50={}, p99={}, max={}}}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max
        )
    }
}

/// One registered metric source: either a single value read on demand,
/// or a histogram whose snapshot is flattened into several values.
enum Source {
    Value(Arc<dyn Fn() -> u64 + Send + Sync>),
    Histogram(Arc<dyn Fn() -> Snapshot + Send + Sync>),
}

/// The suffixes a histogram source flattens into, in sample order.
const HISTOGRAM_FIELDS: [&str; 4] = ["count", "p50", "p99", "max"];

/// A registry unifying the scattered per-plane counter structs behind
/// one registration API — the sensing substrate for telemetry
/// time-series (and, eventually, adaptive controllers).
///
/// Registration is closure-based: a component hands over `Fn() -> u64`
/// (or an `Arc<Counter>` directly), so the live `Arc`'d stats structs
/// every plane already exports plug in without restructuring. Sampling
/// ([`MetricsRegistry::sample`]) reads every source and returns a flat,
/// **name-sorted** `(name, value)` list: the name set and order are
/// deterministic regardless of registration order or concurrent
/// recording, so consecutive samples line up column-wise into a
/// time-series. Histograms flatten into `name.count` / `name.p50` /
/// `name.p99` / `name.max` columns.
///
/// Registering a name twice replaces the earlier source (restarted
/// components re-register cleanly).
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<BTreeMap<String, Source>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a shared counter under `name`.
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        self.register_value(name, move || counter.get());
    }

    /// Registers a single-value source (gauge or counter) under `name`.
    pub fn register_value(&self, name: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        self.sources
            .lock()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), Source::Value(Arc::new(read)));
    }

    /// Registers a histogram source under `name`; it samples as the
    /// flattened `name.count` / `name.p50` / `name.p99` / `name.max`
    /// columns.
    pub fn register_histogram(
        &self,
        name: &str,
        snapshot: impl Fn() -> Snapshot + Send + Sync + 'static,
    ) {
        self.sources
            .lock()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), Source::Histogram(Arc::new(snapshot)));
    }

    /// Number of registered sources (histograms count once).
    pub fn len(&self) -> usize {
        self.sources
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every column name a [`MetricsRegistry::sample`] call will emit,
    /// sorted — histogram sources expand to their flattened fields.
    pub fn sample_names(&self) -> Vec<String> {
        self.sample().into_iter().map(|(name, _)| name).collect()
    }

    /// Reads every source into one flat, name-sorted `(name, value)`
    /// list. The shape (names and order) is a pure function of the
    /// registered set, so samples taken while other threads record
    /// concurrently still align column-wise.
    pub fn sample(&self) -> Vec<(String, u64)> {
        let sources = self.sources.lock().expect("metrics registry poisoned");
        let mut out = Vec::with_capacity(sources.len());
        for (name, source) in sources.iter() {
            match source {
                Source::Value(read) => out.push((name.clone(), read())),
                Source::Histogram(snapshot) => {
                    let snap = snapshot();
                    let values = [snap.count(), snap.p50(), snap.p99(), snap.max()];
                    for (field, value) in HISTOGRAM_FIELDS.iter().zip(values) {
                        out.push((format!("{name}.{field}"), value));
                    }
                }
            }
        }
        // BTreeMap iteration is name-sorted, but flattened histogram
        // fields interleave with neighbouring names ("h.count" sorts
        // after a sibling "h2" would) — sort the flat list so the
        // column order is exactly lexicographic.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsRegistry({} sources)", self.len())
    }
}

/// Formats a nanosecond quantity as a human-readable duration.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        // p50 of uniform 1k..1M should be within 2x of 500k.
        let p50 = s.p50();
        assert!(p50 >= 250_000 && p50 <= 1_000_000, "p50={p50}");
        assert!(s.p99() >= s.p50());
        assert_eq!(s.max(), 1_000_000);
        let mean = s.mean();
        assert!((mean - 500_500.0 * 1.0).abs() < 1_000.0, "mean={mean}");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn zero_and_huge_samples_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut prev = 0;
        for shift in 0..63 {
            let idx = Histogram::bucket_index(1u64 << shift);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn merge_snapshot_folds_distributions() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
            b.record(v * 1_000_000);
        }
        a.merge_snapshot(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count(), 200);
        assert_eq!(s.max(), 100_000_000);
        // The merged p99 lives in b's range, the p50 straddles both.
        assert!(s.p99() >= 1_000_000);
        let empty = Histogram::new();
        empty.merge_snapshot(&Histogram::new().snapshot());
        assert_eq!(empty.snapshot().count(), 0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..10_000u64 {
                    h.record(v);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn registry_sample_is_name_sorted_and_flattens_histograms() {
        let registry = MetricsRegistry::new();
        let c = Arc::new(Counter::new());
        c.add(5);
        registry.register_counter("z.steal.attempts", c);
        registry.register_value("a.fetches", || 7);
        let h = Arc::new(Histogram::new());
        h.record(1000);
        let h2 = h.clone();
        registry.register_histogram("m.latency", move || h2.snapshot());
        assert_eq!(registry.len(), 3);

        let sample = registry.sample();
        let names: Vec<&str> = sample.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "a.fetches",
                "m.latency.count",
                "m.latency.max",
                "m.latency.p50",
                "m.latency.p99",
                "z.steal.attempts",
            ]
        );
        assert_eq!(sample[0].1, 7);
        assert_eq!(sample[1].1, 1); // count
        assert_eq!(sample[2].1, 1000); // max
        assert_eq!(sample[5].1, 5);
        assert_eq!(registry.sample_names().len(), 6);
    }

    #[test]
    fn registry_re_registration_replaces() {
        let registry = MetricsRegistry::new();
        registry.register_value("x", || 1);
        registry.register_value("x", || 2);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.sample(), vec![("x".to_string(), 2)]);
    }

    #[test]
    fn registry_shape_is_stable_under_concurrent_recording() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = Arc::new(Counter::new());
        registry.register_counter("hits", c.clone());
        let h = Arc::new(Histogram::new());
        let h2 = h.clone();
        registry.register_histogram("lat", move || h2.snapshot());

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for _ in 0..3 {
            let c = c.clone();
            let h = h.clone();
            let stop = stop.clone();
            writers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    h.record(42);
                }
            }));
        }
        let names = registry.sample_names();
        let mut last_hits = 0;
        for _ in 0..100 {
            let sample = registry.sample();
            let got: Vec<&String> = sample.iter().map(|(n, _)| n).collect();
            assert!(got
                .iter()
                .map(|n| n.as_str())
                .eq(names.iter().map(|n| n.as_str())));
            let hits = sample
                .iter()
                .find(|(n, _)| n == "hits")
                .expect("registered")
                .1;
            assert!(hits >= last_hits, "counters are monotone across samples");
            last_hits = hits;
        }
        stop.store(true, Ordering::Relaxed);
        for t in writers {
            t.join().unwrap();
        }
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(500), "500 ns");
        assert_eq!(fmt_nanos(1_500), "1.5 µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50 ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00 s");
    }
}
