//! Shared substrate for the `rtml` real-time machine-learning execution
//! framework.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! - [`ids`] — 128-bit deterministic identifiers for tasks, objects,
//!   functions, nodes and workers. Determinism (same submission structure
//!   produces the same IDs) is what makes lineage replay possible.
//! - [`codec`] — a compact, dependency-free binary serialization format for
//!   values stored in the object store and the control plane.
//! - [`collections`] — deterministic fast-hash maps and a bounded top-k
//!   heap for the scheduler hot path.
//! - [`resources`] — fixed-point resource vectors (CPU / GPU / custom)
//!   used for heterogeneous task scheduling (paper requirement R4).
//! - [`task`] — the task specification exchanged between workers,
//!   schedulers, and the control plane.
//! - [`event`] — structured events appended to the control-plane event log
//!   for debugging and profiling (paper requirement R7).
//! - [`time`] — monotonic timestamps, stopwatches, and a calibrated
//!   busy-wait used to emulate compute kernels of known duration.
//! - [`metrics`] — counters and log-bucketed histograms used by the
//!   benchmark harness.
//! - [`retry`] — the one retry/backoff discipline (bounded exponential
//!   backoff, deterministic jitter, deadline) adopted by every plane.
//! - [`error`] — the error type shared across the workspace.

pub mod codec;
pub mod collections;
pub mod error;
pub mod event;
pub mod ids;
pub mod metrics;
pub mod resources;
pub mod retry;
pub mod task;
pub mod time;

pub use codec::Codec;
pub use error::{Error, Result};
pub use event::{Event, EventKind};
pub use ids::{ActorId, DriverId, FunctionId, NodeId, ObjectId, TaskId, UniqueId, WorkerId};
pub use resources::Resources;
pub use retry::RetryPolicy;
pub use task::{ArgSpec, TaskSpec, TaskState};
