//! Hot-path collections for the scheduler and control plane.
//!
//! The placement hot path used to run on `BTreeMap` (ordered, pointer-heavy)
//! and on `std::collections::HashMap` with its default SipHash hasher
//! (keyed, DoS-resistant, and slow for the 4–16 byte identifiers this
//! workspace uses everywhere). This module provides the purpose-built
//! replacements:
//!
//! - [`FastMap`] / [`FastSet`] — `HashMap`/`HashSet` parameterised with a
//!   deterministic 64-bit FNV-1a hasher ([`FnvHasher`]). FNV is a couple of
//!   multiplies for a 16-byte id, and because the hasher is *unkeyed* the
//!   table layout is a pure function of insertion history — the same run
//!   produces the same table on every machine, which keeps the determinism
//!   suite meaningful. Scheduler code must still never depend on iteration
//!   order for *placement decisions* (ties are broken by explicit total
//!   orders); the fixed hasher just removes per-process randomness.
//! - [`FixedReverseHeap`] — a bounded top-k selector keeping the **k
//!   smallest** items pushed into it (a size-capped max-heap, hence
//!   "reverse"). The global scheduler uses it to pick the k least-loaded
//!   candidate nodes per batch in `O(n log k)` instead of sorting the whole
//!   load map.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FNV-1a offset basis.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic (unkeyed) 64-bit FNV-1a [`Hasher`].
///
/// Chosen over SipHash for the control-plane hot maps: keys are short fixed
/// identifiers ([`crate::ids::UniqueId`], [`crate::ids::NodeId`]) produced
/// internally, so hash-flooding resistance buys nothing and the keyed
/// random state would make table layout differ run-to-run.
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV64_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV64_PRIME);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`std::hash::BuildHasher`] for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` with the deterministic FNV-1a hasher — the drop-in
/// replacement for `BTreeMap`/SipHash maps on scheduler hot paths.
pub type FastMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` with the deterministic FNV-1a hasher.
pub type FastSet<T> = HashSet<T, FnvBuildHasher>;

/// A [`FastMap`] pre-sized for `capacity` entries (no rehash up to that
/// size). `FastMap::with_capacity` is unavailable because the hasher is
/// non-default-typed; this free function fills the gap.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FnvBuildHasher::default())
}

/// A [`FastSet`] pre-sized for `capacity` entries.
pub fn fast_set_with_capacity<T>(capacity: usize) -> FastSet<T> {
    FastSet::with_capacity_and_hasher(capacity, FnvBuildHasher::default())
}

/// Hash `bytes` with 64-bit FNV-1a in one call (used for deterministic
/// tie-breaking where a full [`Hasher`] round-trip is overkill).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// A bounded top-k heap keeping the **k smallest** items ever pushed.
///
/// Internally a max-heap capped at `capacity`: while under capacity every
/// push is kept; at capacity a new item evicts the current maximum iff it
/// is strictly smaller. `into_sorted_vec` returns the survivors in
/// ascending order — exactly `sort(); truncate(k)` of the full input, which
/// is what the proptest oracle checks.
///
/// The scheduler keys it with `(cost, NodeId)` tuples so equal costs still
/// have a total order and the selection is deterministic.
#[derive(Clone, Debug)]
pub struct FixedReverseHeap<T: Ord> {
    capacity: usize,
    heap: BinaryHeap<T>,
}

impl<T: Ord> FixedReverseHeap<T> {
    /// An empty heap that will retain at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        FixedReverseHeap {
            capacity,
            heap: BinaryHeap::with_capacity(capacity.saturating_add(1)),
        }
    }

    /// Offer `item`; returns `true` if it was retained (possibly evicting
    /// the current largest kept item).
    pub fn push(&mut self, item: T) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(item);
            return true;
        }
        // At capacity: replace the max iff the newcomer is smaller.
        match self.heap.peek() {
            Some(max) if item < *max => {
                self.heap.pop();
                self.heap.push(item);
                true
            }
            _ => false,
        }
    }

    /// Number of retained items (≤ capacity).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The retention bound `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop everything retained so far, keeping the capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Consume the heap, returning the retained items in ascending order.
    pub fn into_sorted_vec(self) -> Vec<T> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Iterate over the retained items in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.heap.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_hasher_is_deterministic_and_spreads() {
        let h1 = fnv1a_64(b"node-1");
        let h2 = fnv1a_64(b"node-2");
        assert_ne!(h1, h2);
        // Known FNV-1a test vector: empty input hashes to the offset basis.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        // The Hasher impl agrees with the one-shot function.
        let mut hasher = FnvHasher::default();
        hasher.write(b"node-1");
        assert_eq!(hasher.finish(), h1);
    }

    #[test]
    fn fast_map_round_trips_and_presizes() {
        let mut m: FastMap<u64, &str> = fast_map_with_capacity(8);
        assert!(m.capacity() >= 8);
        for i in 0..8u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 8);
        assert_eq!(m.get(&3), Some(&"x"));
        let mut s: FastSet<u64> = fast_set_with_capacity(4);
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn heap_keeps_k_smallest_in_order() {
        let mut h = FixedReverseHeap::new(3);
        for v in [9, 1, 8, 2, 7, 3, 6] {
            h.push(v);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn heap_under_capacity_keeps_everything() {
        let mut h = FixedReverseHeap::new(10);
        for v in [5, 2, 4] {
            assert!(h.push(v));
        }
        assert_eq!(h.into_sorted_vec(), vec![2, 4, 5]);
    }

    #[test]
    fn heap_zero_capacity_rejects_all() {
        let mut h = FixedReverseHeap::new(0);
        assert!(!h.push(1));
        assert!(h.is_empty());
        assert_eq!(h.into_sorted_vec(), Vec::<i32>::new());
    }

    #[test]
    fn heap_push_reports_retention() {
        let mut h = FixedReverseHeap::new(2);
        assert!(h.push(5));
        assert!(h.push(7));
        assert!(!h.push(9)); // larger than current max, dropped
        assert!(h.push(1)); // evicts 7
        assert_eq!(h.into_sorted_vec(), vec![1, 5]);
    }

    #[test]
    fn heap_clear_retains_capacity() {
        let mut h = FixedReverseHeap::new(2);
        h.push(1);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.capacity(), 2);
        h.push(3);
        assert_eq!(h.into_sorted_vec(), vec![3]);
    }

    #[test]
    fn heap_handles_duplicates_like_sort_truncate() {
        let input = [4, 4, 4, 1, 1, 9];
        let mut h = FixedReverseHeap::new(4);
        for v in input {
            h.push(v);
        }
        let mut oracle = input.to_vec();
        oracle.sort_unstable();
        oracle.truncate(4);
        assert_eq!(h.into_sorted_vec(), oracle);
    }
}
