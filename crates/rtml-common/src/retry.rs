//! One retry discipline for every plane.
//!
//! Before this module each plane hand-rolled its own failure handling:
//! the steal plane re-armed on a flat interval, the fetch path fell
//! back to a reactive watcher poll, replication pulls gave up after a
//! single attempt, and driver striping had no failover at all. A
//! [`RetryPolicy`] is the shared vocabulary: bounded attempts,
//! exponential backoff with a cap, *deterministic* jitter (seeded, so
//! two runs with the same seed sleep the same schedule), and an
//! optional overall deadline.
//!
//! The jitter is decorrelated-but-deterministic: the sleep for attempt
//! `k` is drawn from `[nominal/2, nominal]` where `nominal = base *
//! 2^k` (capped), using a splitmix64 hash of `(seed, k)`. Callers that
//! need reproducible cluster behaviour pass a seed derived from stable
//! identity (node id, object id) rather than wall-clock state.

use std::time::{Duration, Instant};

use crate::error::Result;

/// Bounded exponential backoff with deterministic jitter and an
/// optional deadline. `Default` gives 4 attempts starting at 500µs,
/// doubling to a 50ms cap, no deadline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Overall budget across all attempts and sleeps; `None` is
    /// unbounded (the attempt count still bounds the loop).
    pub deadline: Option<Duration>,
    /// Spread sleeps over `[nominal/2, nominal]` deterministically
    /// from the caller's seed; `false` sleeps exactly `nominal`.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(500),
            cap: Duration::from_millis(50),
            deadline: None,
            jitter: true,
        }
    }
}

/// splitmix64: a full-avalanche mix so consecutive attempt numbers
/// produce uncorrelated jitter draws.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no sleeps.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            deadline: None,
            jitter: false,
        }
    }

    /// The sleep before retry number `attempt` (0-based: 0 is the
    /// sleep after the first failure). Exponential in `attempt`,
    /// capped, jittered into `[nominal/2, nominal]` by a hash of
    /// `(seed, attempt)` so the schedule is reproducible.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        let doubled = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX));
        let nominal = doubled.min(self.cap).max(self.base.min(self.cap));
        if !self.jitter || nominal.is_zero() {
            return nominal;
        }
        let nanos = nominal.as_nanos() as u64;
        let draw = mix(seed ^ ((attempt as u64) << 32)) % 1024;
        Duration::from_nanos(nanos / 2 + (nanos / 2 / 1024) * draw)
    }

    /// Run `op` until it succeeds, attempts are exhausted, or the
    /// deadline would be overrun by the next sleep. `op` receives the
    /// 0-based attempt number; the last error is returned verbatim.
    pub fn run<T>(&self, seed: u64, mut op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        let started = Instant::now();
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(err);
                    }
                    let pause = self.backoff(attempt - 1, seed);
                    if let Some(deadline) = self.deadline {
                        if started.elapsed() + pause >= deadline {
                            return Err(err);
                        }
                    }
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            deadline: None,
            jitter: false,
        };
        assert_eq!(p.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(2));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(4));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(8));
        assert_eq!(p.backoff(7, 0), Duration::from_millis(8));
        assert_eq!(p.backoff(31, 0), Duration::from_millis(8));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            let a = p.backoff(attempt, 42);
            let b = p.backoff(attempt, 42);
            assert_eq!(a, b, "same seed must give the same sleep");
            let nominal = p
                .base
                .saturating_mul(1 << attempt.min(31))
                .min(p.cap)
                .max(p.base);
            assert!(a >= nominal / 2 && a <= nominal, "jitter out of range");
        }
        // Different seeds should (for this pair) draw different sleeps.
        assert_ne!(p.backoff(0, 1), p.backoff(0, 2));
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(100),
            deadline: None,
            jitter: true,
        };
        let mut calls = 0;
        let out = p.run(7, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(Error::Timeout)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_returns_last_error_when_exhausted() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(20),
            deadline: None,
            jitter: false,
        };
        let mut calls = 0;
        let out: Result<()> = p.run(0, |_| {
            calls += 1;
            Err(Error::Timeout)
        });
        assert!(matches!(out, Err(Error::Timeout)));
        assert_eq!(calls, 3);
    }

    #[test]
    fn disabled_policy_is_single_shot() {
        let p = RetryPolicy::disabled();
        let mut calls = 0;
        let out: Result<()> = p.run(0, |_| {
            calls += 1;
            Err(Error::Timeout)
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn deadline_stops_the_loop_early() {
        let p = RetryPolicy {
            max_attempts: 100,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(5),
            deadline: Some(Duration::from_millis(12)),
            jitter: false,
        };
        let mut calls = 0;
        let out: Result<()> = p.run(0, |_| {
            calls += 1;
            Err(Error::Timeout)
        });
        assert!(out.is_err());
        assert!(calls < 10, "deadline should cut the loop well short");
    }
}
