//! Fixed-point resource vectors for heterogeneous task scheduling (R4).
//!
//! Tasks declare a demand (`{cpu: 1}`, `{gpu: 1, cpu: 0.5}`, ...); nodes
//! advertise a capacity; schedulers do arithmetic on the two. Quantities
//! are stored in **milli-units** (1 CPU = 1000 milli-CPUs) so comparisons
//! are exact — the same trick Ray itself uses to avoid floating-point
//! drift in admission control.

use std::fmt;

use crate::codec::{Codec, Reader, Writer};
use crate::error::{Error, Result};

/// Milli-units per whole resource unit.
pub const MILLI: u64 = 1000;

/// A resource demand or capacity: CPU, GPU, and named custom resources.
///
/// # Examples
///
/// ```
/// use rtml_common::resources::Resources;
///
/// let node = Resources::new(8.0, 1.0);
/// let task = Resources::cpu(1.0);
/// assert!(node.fits(&task));
/// let after = node.checked_sub(&task).unwrap();
/// assert_eq!(after.cpu_units(), 7.0);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Resources {
    cpu_milli: u64,
    gpu_milli: u64,
    /// Sorted by name; invariant maintained by all constructors.
    custom: Vec<(String, u64)>,
}

impl Resources {
    /// A zero demand (runs anywhere, consumes nothing).
    pub const fn none() -> Self {
        Resources {
            cpu_milli: 0,
            gpu_milli: 0,
            custom: Vec::new(),
        }
    }

    /// Builds a resource vector with `cpu` CPUs and `gpu` GPUs.
    ///
    /// Fractional values are truncated to milli-unit precision. Negative
    /// values are clamped to zero.
    pub fn new(cpu: f64, gpu: f64) -> Self {
        Resources {
            cpu_milli: to_milli(cpu),
            gpu_milli: to_milli(gpu),
            custom: Vec::new(),
        }
    }

    /// A CPU-only demand.
    pub fn cpu(amount: f64) -> Self {
        Resources::new(amount, 0.0)
    }

    /// A GPU-only demand.
    pub fn gpu(amount: f64) -> Self {
        Resources::new(0.0, amount)
    }

    /// Adds a named custom resource (e.g. `"lidar"`, `"tpu"`), returning
    /// the updated vector builder-style.
    pub fn with_custom(mut self, name: &str, amount: f64) -> Self {
        self.set_custom(name, to_milli(amount));
        self
    }

    /// Adds CPUs builder-style.
    pub fn with_cpu(mut self, amount: f64) -> Self {
        self.cpu_milli = to_milli(amount);
        self
    }

    /// Adds GPUs builder-style.
    pub fn with_gpu(mut self, amount: f64) -> Self {
        self.gpu_milli = to_milli(amount);
        self
    }

    fn set_custom(&mut self, name: &str, milli: u64) {
        match self.custom.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => {
                if milli == 0 {
                    self.custom.remove(i);
                } else {
                    self.custom[i].1 = milli;
                }
            }
            Err(i) => {
                if milli != 0 {
                    self.custom.insert(i, (name.to_string(), milli));
                }
            }
        }
    }

    /// CPU quantity in whole units.
    pub fn cpu_units(&self) -> f64 {
        self.cpu_milli as f64 / MILLI as f64
    }

    /// GPU quantity in whole units.
    pub fn gpu_units(&self) -> f64 {
        self.gpu_milli as f64 / MILLI as f64
    }

    /// CPU quantity in milli-units.
    pub fn cpu_milli(&self) -> u64 {
        self.cpu_milli
    }

    /// GPU quantity in milli-units.
    pub fn gpu_milli(&self) -> u64 {
        self.gpu_milli
    }

    /// Quantity of a named custom resource, in whole units.
    pub fn custom_units(&self, name: &str) -> f64 {
        self.custom_milli(name) as f64 / MILLI as f64
    }

    fn custom_milli(&self, name: &str) -> u64 {
        self.custom
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.custom[i].1)
            .unwrap_or(0)
    }

    /// Whether every component is zero.
    pub fn is_zero(&self) -> bool {
        self.cpu_milli == 0 && self.gpu_milli == 0 && self.custom.is_empty()
    }

    /// Whether `demand` fits within `self` on every component.
    pub fn fits(&self, demand: &Resources) -> bool {
        if demand.cpu_milli > self.cpu_milli || demand.gpu_milli > self.gpu_milli {
            return false;
        }
        demand
            .custom
            .iter()
            .all(|(name, amt)| self.custom_milli(name) >= *amt)
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Resources) -> Resources {
        let mut out = self.clone();
        out.cpu_milli = out.cpu_milli.saturating_add(other.cpu_milli);
        out.gpu_milli = out.gpu_milli.saturating_add(other.gpu_milli);
        for (name, amt) in &other.custom {
            let cur = out.custom_milli(name);
            out.set_custom(name, cur.saturating_add(*amt));
        }
        out
    }

    /// Component-wise subtraction clamped at zero. Used for accounting
    /// that may transiently oversubscribe (e.g. a blocked task
    /// re-acquiring its grant while extra workers run).
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        let mut out = self.clone();
        out.cpu_milli = out.cpu_milli.saturating_sub(other.cpu_milli);
        out.gpu_milli = out.gpu_milli.saturating_sub(other.gpu_milli);
        for (name, amt) in &other.custom {
            let cur = out.custom_milli(name);
            out.set_custom(name, cur.saturating_sub(*amt));
        }
        out
    }

    /// Component-wise subtraction; `None` if any component would go
    /// negative (i.e. `other` does not fit).
    pub fn checked_sub(&self, other: &Resources) -> Option<Resources> {
        if !self.fits(other) {
            return None;
        }
        let mut out = self.clone();
        out.cpu_milli -= other.cpu_milli;
        out.gpu_milli -= other.gpu_milli;
        for (name, amt) in &other.custom {
            let cur = out.custom_milli(name);
            out.set_custom(name, cur - amt);
        }
        Some(out)
    }

    /// Total demand expressed as a single scalar, used for load heuristics.
    /// GPUs are weighted heavier than CPUs because they are scarcer.
    pub fn scalar_weight(&self) -> u64 {
        let custom: u64 = self.custom.iter().map(|(_, a)| a).sum();
        self.cpu_milli + 8 * self.gpu_milli + custom
    }

    /// Iterates over the named custom resources as `(name, whole units)`.
    pub fn custom_iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.custom
            .iter()
            .map(|(n, a)| (n.as_str(), *a as f64 / MILLI as f64))
    }
}

fn to_milli(v: f64) -> u64 {
    if v <= 0.0 || !v.is_finite() {
        0
    } else {
        (v * MILLI as f64).round() as u64
    }
}

impl fmt::Debug for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{cpu:{}", self.cpu_units())?;
        if self.gpu_milli > 0 {
            write!(f, ", gpu:{}", self.gpu_units())?;
        }
        for (name, amt) in self.custom_iter() {
            write!(f, ", {name}:{amt}")?;
        }
        write!(f, "}}")
    }
}

impl Codec for Resources {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.cpu_milli);
        w.put_varint(self.gpu_milli);
        w.put_varint(self.custom.len() as u64);
        for (name, amt) in &self.custom {
            name.encode(w);
            w.put_varint(*amt);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let cpu_milli = r.take_varint()?;
        let gpu_milli = r.take_varint()?;
        let n = r.take_varint()? as usize;
        let mut custom = Vec::with_capacity(n.min(64));
        let mut prev: Option<String> = None;
        for _ in 0..n {
            let name = String::decode(r)?;
            let amt = r.take_varint()?;
            // Enforce the sortedness invariant at the trust boundary.
            if let Some(p) = &prev {
                if p.as_str() >= name.as_str() {
                    return Err(Error::Codec("custom resources not sorted".into()));
                }
            }
            prev = Some(name.clone());
            custom.push((name, amt));
        }
        Ok(Resources {
            cpu_milli,
            gpu_milli,
            custom,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_bytes};

    #[test]
    fn fits_basic() {
        let node = Resources::new(4.0, 1.0);
        assert!(node.fits(&Resources::cpu(4.0)));
        assert!(!node.fits(&Resources::cpu(4.001)));
        assert!(node.fits(&Resources::gpu(1.0)));
        assert!(!node.fits(&Resources::gpu(2.0)));
        assert!(node.fits(&Resources::none()));
    }

    #[test]
    fn custom_resources_participate() {
        let node = Resources::new(4.0, 0.0).with_custom("lidar", 2.0);
        assert!(node.fits(&Resources::none().with_custom("lidar", 2.0)));
        assert!(!node.fits(&Resources::none().with_custom("lidar", 2.5)));
        assert!(!node.fits(&Resources::none().with_custom("radar", 0.5)));
    }

    #[test]
    fn add_then_sub_is_identity() {
        let a = Resources::new(2.0, 1.0).with_custom("x", 3.0);
        let b = Resources::new(0.5, 0.5)
            .with_custom("x", 1.0)
            .with_custom("y", 2.0);
        let sum = a.add(&b);
        let back = sum.checked_sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn sub_underflow_is_none() {
        let a = Resources::cpu(1.0);
        assert!(a.checked_sub(&Resources::cpu(1.5)).is_none());
        assert!(a.checked_sub(&Resources::gpu(0.001)).is_none());
    }

    #[test]
    fn fractional_precision_is_milli() {
        let r = Resources::cpu(0.0004); // rounds to 0
        assert!(r.is_zero());
        let r = Resources::cpu(0.001);
        assert_eq!(r.cpu_milli(), 1);
        let r = Resources::cpu(0.5);
        assert_eq!(r.cpu_milli(), 500);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert!(Resources::cpu(-1.0).is_zero());
        assert!(Resources::cpu(f64::NAN).is_zero());
    }

    #[test]
    fn custom_zero_amounts_are_dropped() {
        let r = Resources::none().with_custom("a", 0.0);
        assert!(r.is_zero());
    }

    #[test]
    fn codec_round_trip() {
        let r = Resources::new(3.5, 2.0)
            .with_custom("b", 1.0)
            .with_custom("a", 0.25);
        let bytes = encode_to_bytes(&r);
        let back: Resources = decode_from_slice(&bytes).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn codec_rejects_unsorted_custom() {
        let mut w = Writer::new();
        w.put_varint(0);
        w.put_varint(0);
        w.put_varint(2);
        String::from("b").encode(&mut w);
        w.put_varint(1);
        String::from("a").encode(&mut w);
        w.put_varint(1);
        let bytes = w.into_bytes();
        let r: Result<Resources> = decode_from_slice(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn display_is_compact() {
        let r = Resources::new(1.0, 1.0).with_custom("tpu", 2.0);
        assert_eq!(format!("{r}"), "{cpu:1, gpu:1, tpu:2}");
    }

    #[test]
    fn scalar_weight_orders_demands() {
        assert!(Resources::gpu(1.0).scalar_weight() > Resources::cpu(1.0).scalar_weight());
    }
}
