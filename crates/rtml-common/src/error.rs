//! The error type shared by every crate in the workspace.

use std::fmt;

use crate::ids::{FunctionId, NodeId, ObjectId, TaskId};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the rtml runtime and its substrates.
///
/// The variants are deliberately coarse: they distinguish the cases a caller
/// can act on (retry, reconstruct, give up) rather than every internal
/// failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested object is not present in any object store and could
    /// not be reconstructed from lineage.
    ObjectNotFound(ObjectId),
    /// A blocking operation exceeded its deadline.
    Timeout,
    /// The task's function raised an application-level error.
    TaskFailed {
        /// Task that failed.
        task: TaskId,
        /// Application-provided description.
        message: String,
    },
    /// A value could not be encoded or decoded.
    Codec(String),
    /// The object store is at capacity and nothing further can be evicted.
    StoreFull {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes currently usable.
        available: u64,
    },
    /// An object was inserted twice. Object IDs are unique, so this
    /// indicates either an application bug or a lineage replay divergence.
    DuplicateObject(ObjectId),
    /// The function is not present in the function registry.
    FunctionNotFound(FunctionId),
    /// The referenced node is not part of the cluster or has been killed.
    NodeDown(NodeId),
    /// A component's channel closed, typically during shutdown.
    Disconnected(&'static str),
    /// The cluster is shutting down and no longer accepts work.
    ShuttingDown,
    /// Reconstruction was attempted but the lineage is incomplete (for
    /// example, the object was created by `put` whose value was lost).
    LineageBroken(ObjectId),
    /// An argument failed validation before any work was attempted.
    InvalidArgument(String),
    /// Resource demand can never be satisfied by any node in the cluster.
    Unschedulable {
        /// Task whose demand is infeasible.
        task: TaskId,
        /// Human-readable description of the deficit.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ObjectNotFound(id) => write!(f, "object {id} not found"),
            Error::Timeout => write!(f, "operation timed out"),
            Error::TaskFailed { task, message } => {
                write!(f, "task {task} failed: {message}")
            }
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::StoreFull {
                requested,
                available,
            } => write!(
                f,
                "object store full: requested {requested} bytes, {available} available"
            ),
            Error::DuplicateObject(id) => write!(f, "object {id} already exists"),
            Error::FunctionNotFound(id) => write!(f, "function {id} not registered"),
            Error::NodeDown(id) => write!(f, "node {id} is down"),
            Error::Disconnected(what) => write!(f, "{what} disconnected"),
            Error::ShuttingDown => write!(f, "cluster is shutting down"),
            Error::LineageBroken(id) => {
                write!(f, "object {id} cannot be reconstructed: lineage broken")
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Unschedulable { task, detail } => {
                write!(f, "task {task} is unschedulable: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UniqueId;

    #[test]
    fn display_is_human_readable() {
        let id = ObjectId::from_unique(UniqueId::from_u128(7));
        let msg = Error::ObjectNotFound(id).to_string();
        assert!(msg.contains("not found"), "{msg}");

        let msg = Error::StoreFull {
            requested: 100,
            available: 10,
        }
        .to_string();
        assert!(msg.contains("100"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Timeout, Error::Timeout);
        assert_ne!(Error::Timeout, Error::ShuttingDown);
    }
}
