//! A compact, dependency-free binary serialization format.
//!
//! Objects exchanged through the object store and records written to the
//! control plane are plain byte strings. This module defines the encoding:
//! little-endian fixed-width scalars, LEB128 varints for lengths and
//! collection sizes, and zig-zag varints for signed integers.
//!
//! The format is **deterministic**: encoding the same value always produces
//! the same bytes. Lineage replay verifies reconstructed objects against
//! this property in tests.
//!
//! # Examples
//!
//! ```
//! use rtml_common::codec::{decode_from_slice, encode_to_bytes, Codec};
//!
//! let value = (42u64, String::from("hello"), vec![1.0f64, 2.0]);
//! let bytes = encode_to_bytes(&value);
//! let back: (u64, String, Vec<f64>) = decode_from_slice(&bytes).unwrap();
//! assert_eq!(value, back);
//! ```

use bytes::Bytes;

use crate::error::{Error, Result};

/// Destination buffer for encoding.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with `cap` bytes of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Consumes the writer and returns the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a zig-zag encoded signed varint.
    pub fn put_signed_varint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Source buffer for decoding; a cursor over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the reader has been fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn advance(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Codec(format!(
                "unexpected end of input: wanted {n} bytes, had {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.advance(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16> {
        let b = self.advance(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.advance(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.advance(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `u128`.
    pub fn take_u128(&mut self) -> Result<u128> {
        let b = self.advance(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads a LEB128 varint.
    pub fn take_varint(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8()?;
            if shift == 63 && byte > 1 {
                return Err(Error::Codec("varint overflows u64".into()));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(Error::Codec("varint too long".into()));
            }
        }
    }

    /// Reads a zig-zag encoded signed varint.
    pub fn take_signed_varint(&mut self) -> Result<i64> {
        let v = self.take_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.take_varint()? as usize;
        self.advance(len)
    }
}

/// A value that can be serialized to and from the rtml wire format.
///
/// Implementations must round-trip: `decode(encode(v)) == v`. The codec is
/// used for object-store payloads, control-plane records, and task
/// arguments.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes a value from `r`, consuming exactly the bytes `encode`
    /// produced.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

/// Encodes a value into a freshly allocated [`Bytes`].
///
/// Pre-allocates a cache-line-ish buffer: control-plane records (task
/// states, object infos, events, small specs) almost all fit, turning
/// the encode into a single allocation instead of a doubling series.
pub fn encode_to_bytes<T: Codec>(value: &T) -> Bytes {
    let mut w = Writer::with_capacity(64);
    value.encode(&mut w);
    w.into_bytes()
}

/// Encodes a batch of values into **one** shared arena allocation and
/// returns a per-value zero-copy window ([`Bytes::slice`]) into it.
///
/// Group-commit paths (task-table `record_many`, spill-batch wire frames)
/// used to pay one allocation per record; with the arena the whole batch
/// is a single allocation plus reference-counted views, and records small
/// enough to inline (≤ the `Bytes` inline cap) stay allocation-free.
/// `hint_per_value` pre-sizes the arena (bytes per record); an undershoot
/// only costs a doubling, not correctness.
pub fn encode_batch_to_bytes<T: Codec>(values: &[T], hint_per_value: usize) -> Vec<Bytes> {
    let mut w = Writer::with_capacity(values.len().saturating_mul(hint_per_value));
    let mut spans = Vec::with_capacity(values.len());
    for v in values {
        let start = w.len();
        v.encode(&mut w);
        spans.push(start..w.len());
    }
    let arena = w.into_bytes();
    spans.into_iter().map(|s| arena.slice(s)).collect()
}

/// Decodes a value from a byte slice, requiring full consumption.
pub fn decode_from_slice<T: Codec>(buf: &[u8]) -> Result<T> {
    let mut r = Reader::new(buf);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(Error::Codec(format!(
            "{} trailing bytes after decode",
            r.remaining()
        )));
    }
    Ok(value)
}

macro_rules! codec_unsigned {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(*self as u64);
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = r.take_varint()?;
                <$ty>::try_from(v)
                    .map_err(|_| Error::Codec(format!("value {v} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

codec_unsigned!(u8, u16, u32, u64, usize);

macro_rules! codec_signed {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_signed_varint(*self as i64);
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let v = r.take_signed_varint()?;
                <$ty>::try_from(v)
                    .map_err(|_| Error::Codec(format!("value {v} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

codec_signed!(i8, i16, i32, i64, isize);

impl Codec for u128 {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(*self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.take_u128()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Codec for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.to_bits());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(f32::from_bits(r.take_u32()?))
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.to_bits());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(f64::from_bits(r.take_u64()?))
    }
}

impl Codec for () {
    fn encode(&self, _w: &mut Writer) {}

    fn decode(_r: &mut Reader<'_>) -> Result<Self> {
        Ok(())
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let bytes = r.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|e| Error::Codec(format!("invalid utf-8: {e}")))
    }
}

impl Codec for Bytes {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Bytes::copy_from_slice(r.take_bytes()?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.take_varint()? as usize;
        // Guard against hostile lengths: cap the pre-allocation, let the
        // loop fail naturally on truncated input.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(Error::Codec(format!("invalid option tag {other}"))),
        }
    }
}

macro_rules! codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

codec_tuple!(A: 0);
codec_tuple!(A: 0, B: 1);
codec_tuple!(A: 0, B: 1, C: 2);
codec_tuple!(A: 0, B: 1, C: 2, D: 3);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Implements [`Codec`] for a struct by encoding its fields in order.
///
/// # Examples
///
/// ```
/// use rtml_common::impl_codec_struct;
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Point { x: f64, y: f64, label: String }
/// impl_codec_struct!(Point { x, y, label });
///
/// let p = Point { x: 1.0, y: 2.0, label: "origin-ish".into() };
/// let bytes = rtml_common::codec::encode_to_bytes(&p);
/// let q: Point = rtml_common::codec::decode_from_slice(&bytes).unwrap();
/// assert_eq!(p, q);
/// ```
#[macro_export]
macro_rules! impl_codec_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::codec::Codec for $ty {
            fn encode(&self, w: &mut $crate::codec::Writer) {
                $($crate::codec::Codec::encode(&self.$field, w);)+
            }

            fn decode(r: &mut $crate::codec::Reader<'_>) -> $crate::error::Result<Self> {
                Ok($ty {
                    $($field: $crate::codec::Codec::decode(r)?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_bytes(&value);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(i8::MIN);
        round_trip(i16::MIN);
        round_trip(i32::MIN);
        round_trip(i64::MIN);
        round_trip(-1i64);
        round_trip(u128::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let bytes = encode_to_bytes(&f64::NAN);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(String::from("hello world"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(42u32));
        round_trip(Option::<u32>::None);
        round_trip((1u8, -2i64, String::from("x")));
        round_trip(Bytes::from_static(b"raw bytes"));
        round_trip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn varint_boundaries() {
        for shift in 0..64 {
            round_trip(1u64 << shift);
            round_trip((1u64 << shift).wrapping_sub(1));
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = encode_to_bytes(&(1u64, 2u64));
        let r: Result<(u64, u64)> = decode_from_slice(&bytes[..bytes.len() - 1]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut w = Writer::new();
        5u64.encode(&mut w);
        w.put_u8(0xff);
        let bytes = w.into_bytes();
        let r: Result<u64> = decode_from_slice(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool> = decode_from_slice(&[2]);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let r: Result<String> = decode_from_slice(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn out_of_range_narrowing_rejected() {
        let bytes = encode_to_bytes(&300u64);
        let r: Result<u8> = decode_from_slice(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 10 bytes of continuation markers overflows a u64 varint.
        let buf = [0xffu8; 10];
        let mut r = Reader::new(&buf);
        assert!(r.take_varint().is_err());
    }

    #[test]
    fn struct_macro_round_trips() {
        #[derive(Debug, Clone, PartialEq)]
        struct Sample {
            a: u64,
            b: String,
            c: Vec<f64>,
        }
        impl_codec_struct!(Sample { a, b, c });
        round_trip(Sample {
            a: 9,
            b: "s".into(),
            c: vec![1.0, 2.0],
        });
    }

    #[test]
    fn batch_arena_encoding_round_trips_and_shares_storage() {
        let values: Vec<String> = (0..8)
            .map(|i| format!("value-{i}-{}", "x".repeat(40)))
            .collect();
        let encoded = encode_batch_to_bytes(&values, 48);
        assert_eq!(encoded.len(), values.len());
        for (bytes, value) in encoded.iter().zip(&values) {
            let back: String = decode_from_slice(bytes).unwrap();
            assert_eq!(&back, value);
        }
        // Large records all point into the same arena allocation.
        let first = encoded[0].as_slice().as_ptr() as usize;
        let second = encoded[1].as_slice().as_ptr() as usize;
        assert!(second > first && second - first < 4096);
        // Matches the per-value encoder byte-for-byte.
        for (bytes, value) in encoded.iter().zip(&values) {
            assert_eq!(bytes.as_slice(), encode_to_bytes(value).as_slice());
        }
        // Empty batch is fine.
        assert!(encode_batch_to_bytes::<u64>(&[], 8).is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = (vec![1u64, 2, 3], String::from("det"), Some(5i64));
        assert_eq!(encode_to_bytes(&v), encode_to_bytes(&v));
    }
}
