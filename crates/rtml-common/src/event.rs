//! Structured events for debugging and profiling (paper requirement R7).
//!
//! Every component appends [`Event`]s to the control plane's event log.
//! The profiling tooling in `rtml-runtime` turns the log into per-task
//! latency breakdowns and Chrome-trace timelines — the paper's "profiling
//! tools / error diagnosis" box in Figure 3.

use crate::codec::{Codec, Reader, Writer};
use crate::error::{Error, Result};
use crate::ids::{NodeId, ObjectId, TaskId, WorkerId};

/// Which subsystem emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// A driver program.
    Driver,
    /// A worker thread.
    Worker,
    /// A per-node local scheduler.
    LocalScheduler,
    /// A global scheduler.
    GlobalScheduler,
    /// A per-node object store.
    ObjectStore,
    /// The cluster supervisor (failure detection, recovery).
    Supervisor,
    /// A per-node fetch agent (client side of the transfer plane).
    FetchAgent,
    /// A per-node replication agent (the hot-object replication plane).
    ReplicationAgent,
}

impl Codec for Component {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Component::Driver => 0,
            Component::Worker => 1,
            Component::LocalScheduler => 2,
            Component::GlobalScheduler => 3,
            Component::ObjectStore => 4,
            Component::Supervisor => 5,
            // Wire tags are append-only: new components take the next
            // free tag so logged streams stay decodable across versions.
            Component::FetchAgent => 6,
            Component::ReplicationAgent => 7,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => Component::Driver,
            1 => Component::Worker,
            2 => Component::LocalScheduler,
            3 => Component::GlobalScheduler,
            4 => Component::ObjectStore,
            5 => Component::Supervisor,
            6 => Component::FetchAgent,
            7 => Component::ReplicationAgent,
            other => return Err(Error::Codec(format!("invalid Component tag {other}"))),
        })
    }
}

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A task was submitted (driver or nested worker submission).
    TaskSubmitted { task: TaskId },
    /// The local scheduler queued the task for local execution.
    TaskQueuedLocal { task: TaskId, node: NodeId },
    /// The local scheduler spilled the task to the global scheduler.
    TaskSpilled { task: TaskId, from: NodeId },
    /// The global scheduler placed the task on a node.
    TaskPlaced { task: TaskId, node: NodeId },
    /// A worker began executing the task.
    TaskStarted { task: TaskId, worker: WorkerId },
    /// The task finished and sealed its return objects.
    TaskFinished {
        task: TaskId,
        worker: WorkerId,
        micros: u64,
    },
    /// The task raised an application error.
    TaskFailed { task: TaskId, message: String },
    /// A task was resubmitted by lineage reconstruction.
    TaskReconstructed { task: TaskId, attempt: u32 },
    /// An object was sealed into a node's store.
    ObjectSealed {
        object: ObjectId,
        node: NodeId,
        size: u64,
    },
    /// An object was evicted from a node's store.
    ObjectEvicted { object: ObjectId, node: NodeId },
    /// A cross-node object transfer began.
    TransferStarted {
        object: ObjectId,
        from: NodeId,
        to: NodeId,
    },
    /// A local scheduler proactively requested an object at task-queue
    /// time, overlapping the transfer with queueing (dispatch-time
    /// prefetch). A subsequent `ObjectSealed` on the same node is a
    /// prefetch hit.
    PrefetchIssued { object: ObjectId, node: NodeId },
    /// A cross-node object transfer completed.
    TransferFinished {
        object: ObjectId,
        to: NodeId,
        micros: u64,
    },
    /// A ready task was pulled from a loaded node by an idle peer (the
    /// steal plane): ownership moved from `from` to `to` before the
    /// grant left the victim.
    TaskStolen {
        task: TaskId,
        from: NodeId,
        to: NodeId,
    },
    /// A worker was killed (failure injection or crash).
    WorkerLost { worker: WorkerId },
    /// A node was killed.
    NodeLost { node: NodeId },
    /// A node's components were restarted after failure.
    NodeRestarted { node: NodeId },
    /// One submission batch's specs were group-committed as an
    /// append-only segment (the control-plane commit point of
    /// pipelined submission). `seq` is the submitter's batch counter;
    /// `micros` covers the segment commit call, so the span runs
    /// backwards from this event's timestamp.
    SpecSegmentCommitted {
        node: NodeId,
        seq: u64,
        tasks: u32,
        micros: u64,
    },
    /// One global-scheduler shard placed a batch of spilled tasks
    /// against a single cluster-view snapshot. `micros` covers the
    /// whole view-build + place loop.
    PlacementBatch {
        node: NodeId,
        shard: u32,
        tasks: u32,
        micros: u64,
    },
    /// An idle scheduler sent a steal request to a loaded victim.
    /// `seq` correlates with the matching [`EventKind::StealRoundTrip`]
    /// (thieves keep at most one request in flight, so the pair is
    /// unambiguous per thief).
    StealRequested {
        thief: NodeId,
        victim: NodeId,
        seq: u64,
    },
    /// The grant for steal request `seq` arrived back at the thief:
    /// the full request→grant round trip took `micros` (tasks may be
    /// zero — a stale victim whose queue drained answers empty).
    StealRoundTrip {
        thief: NodeId,
        victim: NodeId,
        seq: u64,
        tasks: u32,
        micros: u64,
    },
    /// One replication-agent demand sweep: `hot` objects crossed the
    /// read threshold, `placed` replica copies were created, `released`
    /// cold copies were reclaimed, in `micros`.
    ReplicationSweep {
        node: NodeId,
        hot: u32,
        placed: u32,
        released: u32,
        micros: u64,
    },
    /// A submission batch landed on the staging ring (the accept stage
    /// of pipelined ingest). `depth` is the ring occupancy after the
    /// push; `seq` correlates with the matching
    /// [`EventKind::BatchIndexed`].
    BatchStaged {
        node: NodeId,
        seq: u64,
        tasks: u32,
        depth: u32,
    },
    /// Staged batch `seq` was indexed (spill scan, group-committed
    /// states, dependency gating); `micros` covers the index work. The
    /// staged→indexed gap is the staging-ring residency span.
    BatchIndexed {
        node: NodeId,
        seq: u64,
        tasks: u32,
        micros: u64,
    },
}

impl EventKind {
    /// The task this event concerns, if any — used by the profiler to
    /// group events into per-task timelines.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            EventKind::TaskSubmitted { task }
            | EventKind::TaskQueuedLocal { task, .. }
            | EventKind::TaskSpilled { task, .. }
            | EventKind::TaskPlaced { task, .. }
            | EventKind::TaskStarted { task, .. }
            | EventKind::TaskFinished { task, .. }
            | EventKind::TaskFailed { task, .. }
            | EventKind::TaskReconstructed { task, .. }
            | EventKind::TaskStolen { task, .. } => Some(*task),
            _ => None,
        }
    }

    /// Short stable label for trace output.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TaskSubmitted { .. } => "task_submitted",
            EventKind::TaskQueuedLocal { .. } => "task_queued_local",
            EventKind::TaskSpilled { .. } => "task_spilled",
            EventKind::TaskPlaced { .. } => "task_placed",
            EventKind::TaskStarted { .. } => "task_started",
            EventKind::TaskFinished { .. } => "task_finished",
            EventKind::TaskFailed { .. } => "task_failed",
            EventKind::TaskReconstructed { .. } => "task_reconstructed",
            EventKind::TaskStolen { .. } => "task_stolen",
            EventKind::ObjectSealed { .. } => "object_sealed",
            EventKind::ObjectEvicted { .. } => "object_evicted",
            EventKind::TransferStarted { .. } => "transfer_started",
            EventKind::PrefetchIssued { .. } => "prefetch_issued",
            EventKind::TransferFinished { .. } => "transfer_finished",
            EventKind::WorkerLost { .. } => "worker_lost",
            EventKind::NodeLost { .. } => "node_lost",
            EventKind::NodeRestarted { .. } => "node_restarted",
            EventKind::SpecSegmentCommitted { .. } => "spec_segment_committed",
            EventKind::PlacementBatch { .. } => "placement_batch",
            EventKind::StealRequested { .. } => "steal_requested",
            EventKind::StealRoundTrip { .. } => "steal_round_trip",
            EventKind::ReplicationSweep { .. } => "replication_sweep",
            EventKind::BatchStaged { .. } => "batch_staged",
            EventKind::BatchIndexed { .. } => "batch_indexed",
        }
    }
}

impl Codec for EventKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            EventKind::TaskSubmitted { task } => {
                w.put_u8(0);
                task.encode(w);
            }
            EventKind::TaskQueuedLocal { task, node } => {
                w.put_u8(1);
                task.encode(w);
                node.encode(w);
            }
            EventKind::TaskSpilled { task, from } => {
                w.put_u8(2);
                task.encode(w);
                from.encode(w);
            }
            EventKind::TaskPlaced { task, node } => {
                w.put_u8(3);
                task.encode(w);
                node.encode(w);
            }
            EventKind::TaskStarted { task, worker } => {
                w.put_u8(4);
                task.encode(w);
                worker.encode(w);
            }
            EventKind::TaskFinished {
                task,
                worker,
                micros,
            } => {
                w.put_u8(5);
                task.encode(w);
                worker.encode(w);
                w.put_varint(*micros);
            }
            EventKind::TaskFailed { task, message } => {
                w.put_u8(6);
                task.encode(w);
                message.encode(w);
            }
            EventKind::TaskReconstructed { task, attempt } => {
                w.put_u8(7);
                task.encode(w);
                w.put_u32(*attempt);
            }
            EventKind::ObjectSealed { object, node, size } => {
                w.put_u8(8);
                object.encode(w);
                node.encode(w);
                w.put_varint(*size);
            }
            EventKind::ObjectEvicted { object, node } => {
                w.put_u8(9);
                object.encode(w);
                node.encode(w);
            }
            EventKind::TransferStarted { object, from, to } => {
                w.put_u8(10);
                object.encode(w);
                from.encode(w);
                to.encode(w);
            }
            EventKind::TransferFinished { object, to, micros } => {
                w.put_u8(11);
                object.encode(w);
                to.encode(w);
                w.put_varint(*micros);
            }
            EventKind::WorkerLost { worker } => {
                w.put_u8(12);
                worker.encode(w);
            }
            EventKind::NodeLost { node } => {
                w.put_u8(13);
                node.encode(w);
            }
            EventKind::NodeRestarted { node } => {
                w.put_u8(14);
                node.encode(w);
            }
            EventKind::PrefetchIssued { object, node } => {
                w.put_u8(15);
                object.encode(w);
                node.encode(w);
            }
            EventKind::TaskStolen { task, from, to } => {
                w.put_u8(16);
                task.encode(w);
                from.encode(w);
                to.encode(w);
            }
            EventKind::SpecSegmentCommitted {
                node,
                seq,
                tasks,
                micros,
            } => {
                w.put_u8(17);
                node.encode(w);
                w.put_varint(*seq);
                w.put_u32(*tasks);
                w.put_varint(*micros);
            }
            EventKind::PlacementBatch {
                node,
                shard,
                tasks,
                micros,
            } => {
                w.put_u8(18);
                node.encode(w);
                w.put_u32(*shard);
                w.put_u32(*tasks);
                w.put_varint(*micros);
            }
            EventKind::StealRequested { thief, victim, seq } => {
                w.put_u8(19);
                thief.encode(w);
                victim.encode(w);
                w.put_varint(*seq);
            }
            EventKind::StealRoundTrip {
                thief,
                victim,
                seq,
                tasks,
                micros,
            } => {
                w.put_u8(20);
                thief.encode(w);
                victim.encode(w);
                w.put_varint(*seq);
                w.put_u32(*tasks);
                w.put_varint(*micros);
            }
            EventKind::ReplicationSweep {
                node,
                hot,
                placed,
                released,
                micros,
            } => {
                w.put_u8(21);
                node.encode(w);
                w.put_u32(*hot);
                w.put_u32(*placed);
                w.put_u32(*released);
                w.put_varint(*micros);
            }
            EventKind::BatchStaged {
                node,
                seq,
                tasks,
                depth,
            } => {
                w.put_u8(22);
                node.encode(w);
                w.put_varint(*seq);
                w.put_u32(*tasks);
                w.put_u32(*depth);
            }
            EventKind::BatchIndexed {
                node,
                seq,
                tasks,
                micros,
            } => {
                w.put_u8(23);
                node.encode(w);
                w.put_varint(*seq);
                w.put_u32(*tasks);
                w.put_varint(*micros);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => EventKind::TaskSubmitted {
                task: TaskId::decode(r)?,
            },
            1 => EventKind::TaskQueuedLocal {
                task: TaskId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            2 => EventKind::TaskSpilled {
                task: TaskId::decode(r)?,
                from: NodeId::decode(r)?,
            },
            3 => EventKind::TaskPlaced {
                task: TaskId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            4 => EventKind::TaskStarted {
                task: TaskId::decode(r)?,
                worker: WorkerId::decode(r)?,
            },
            5 => EventKind::TaskFinished {
                task: TaskId::decode(r)?,
                worker: WorkerId::decode(r)?,
                micros: r.take_varint()?,
            },
            6 => EventKind::TaskFailed {
                task: TaskId::decode(r)?,
                message: String::decode(r)?,
            },
            7 => EventKind::TaskReconstructed {
                task: TaskId::decode(r)?,
                attempt: r.take_u32()?,
            },
            8 => EventKind::ObjectSealed {
                object: ObjectId::decode(r)?,
                node: NodeId::decode(r)?,
                size: r.take_varint()?,
            },
            9 => EventKind::ObjectEvicted {
                object: ObjectId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            10 => EventKind::TransferStarted {
                object: ObjectId::decode(r)?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
            },
            11 => EventKind::TransferFinished {
                object: ObjectId::decode(r)?,
                to: NodeId::decode(r)?,
                micros: r.take_varint()?,
            },
            12 => EventKind::WorkerLost {
                worker: WorkerId::decode(r)?,
            },
            13 => EventKind::NodeLost {
                node: NodeId::decode(r)?,
            },
            14 => EventKind::NodeRestarted {
                node: NodeId::decode(r)?,
            },
            15 => EventKind::PrefetchIssued {
                object: ObjectId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            16 => EventKind::TaskStolen {
                task: TaskId::decode(r)?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
            },
            17 => EventKind::SpecSegmentCommitted {
                node: NodeId::decode(r)?,
                seq: r.take_varint()?,
                tasks: r.take_u32()?,
                micros: r.take_varint()?,
            },
            18 => EventKind::PlacementBatch {
                node: NodeId::decode(r)?,
                shard: r.take_u32()?,
                tasks: r.take_u32()?,
                micros: r.take_varint()?,
            },
            19 => EventKind::StealRequested {
                thief: NodeId::decode(r)?,
                victim: NodeId::decode(r)?,
                seq: r.take_varint()?,
            },
            20 => EventKind::StealRoundTrip {
                thief: NodeId::decode(r)?,
                victim: NodeId::decode(r)?,
                seq: r.take_varint()?,
                tasks: r.take_u32()?,
                micros: r.take_varint()?,
            },
            21 => EventKind::ReplicationSweep {
                node: NodeId::decode(r)?,
                hot: r.take_u32()?,
                placed: r.take_u32()?,
                released: r.take_u32()?,
                micros: r.take_varint()?,
            },
            22 => EventKind::BatchStaged {
                node: NodeId::decode(r)?,
                seq: r.take_varint()?,
                tasks: r.take_u32()?,
                depth: r.take_u32()?,
            },
            23 => EventKind::BatchIndexed {
                node: NodeId::decode(r)?,
                seq: r.take_varint()?,
                tasks: r.take_u32()?,
                micros: r.take_varint()?,
            },
            other => return Err(Error::Codec(format!("invalid EventKind tag {other}"))),
        })
    }
}

/// One timestamped event-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process epoch (see [`crate::time`]).
    pub at_nanos: u64,
    /// Emitting subsystem.
    pub component: Component,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event stamped with the current time.
    pub fn now(component: Component, kind: EventKind) -> Self {
        Event {
            at_nanos: crate::time::now_nanos(),
            component,
            kind,
        }
    }
}

impl Codec for Event {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.at_nanos);
        self.component.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Event {
            at_nanos: r.take_varint()?,
            component: Component::decode(r)?,
            kind: EventKind::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_bytes};
    use crate::ids::DriverId;

    #[test]
    fn all_event_kinds_round_trip() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        let o = t.return_object(0);
        let n = NodeId(1);
        let wk = WorkerId::new(n, 2);
        let kinds = vec![
            EventKind::TaskSubmitted { task: t },
            EventKind::TaskQueuedLocal { task: t, node: n },
            EventKind::TaskSpilled { task: t, from: n },
            EventKind::TaskPlaced { task: t, node: n },
            EventKind::TaskStarted {
                task: t,
                worker: wk,
            },
            EventKind::TaskFinished {
                task: t,
                worker: wk,
                micros: 123,
            },
            EventKind::TaskFailed {
                task: t,
                message: "m".into(),
            },
            EventKind::TaskReconstructed {
                task: t,
                attempt: 2,
            },
            EventKind::ObjectSealed {
                object: o,
                node: n,
                size: 64,
            },
            EventKind::ObjectEvicted { object: o, node: n },
            EventKind::TransferStarted {
                object: o,
                from: n,
                to: NodeId(2),
            },
            EventKind::TransferFinished {
                object: o,
                to: NodeId(2),
                micros: 5,
            },
            EventKind::WorkerLost { worker: wk },
            EventKind::NodeLost { node: n },
            EventKind::NodeRestarted { node: n },
            EventKind::PrefetchIssued { object: o, node: n },
            EventKind::TaskStolen {
                task: t,
                from: n,
                to: NodeId(2),
            },
            EventKind::SpecSegmentCommitted {
                node: n,
                seq: 7,
                tasks: 4096,
                micros: 88,
            },
            EventKind::PlacementBatch {
                node: n,
                shard: 3,
                tasks: 17,
                micros: 9,
            },
            EventKind::StealRequested {
                thief: n,
                victim: NodeId(2),
                seq: 11,
            },
            EventKind::StealRoundTrip {
                thief: n,
                victim: NodeId(2),
                seq: 11,
                tasks: 0,
                micros: 450,
            },
            EventKind::ReplicationSweep {
                node: n,
                hot: 1,
                placed: 2,
                released: 0,
                micros: 300,
            },
            EventKind::BatchStaged {
                node: n,
                seq: 5,
                tasks: 256,
                depth: 3,
            },
            EventKind::BatchIndexed {
                node: n,
                seq: 5,
                tasks: 256,
                micros: 42,
            },
        ];
        let components = [
            Component::Driver,
            Component::Worker,
            Component::LocalScheduler,
            Component::GlobalScheduler,
            Component::ObjectStore,
            Component::Supervisor,
            Component::FetchAgent,
            Component::ReplicationAgent,
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = Event {
                at_nanos: 42,
                component: components[i % components.len()],
                kind: kind.clone(),
            };
            let bytes = encode_to_bytes(&ev);
            let back: Event = decode_from_slice(&bytes).unwrap();
            assert_eq!(ev, back, "kind {}", kind.label());
        }
    }

    #[test]
    fn all_components_round_trip() {
        for tag in 0..=7u8 {
            let mut w = crate::codec::Writer::with_capacity(1);
            w.put_u8(tag);
            let bytes = w.into_bytes();
            let component: Component =
                decode_from_slice(&bytes).expect("every tag through 7 decodes");
            let back = encode_to_bytes(&component);
            assert_eq!(&back[..], &bytes[..], "component tag {tag}");
        }
        let mut w = crate::codec::Writer::with_capacity(1);
        w.put_u8(8);
        assert!(decode_from_slice::<Component>(&w.into_bytes()).is_err());
    }

    #[test]
    fn task_extraction() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        assert_eq!(EventKind::TaskSubmitted { task: t }.task(), Some(t));
        assert_eq!(EventKind::NodeLost { node: NodeId(0) }.task(), None);
    }

    #[test]
    fn now_uses_monotonic_epoch() {
        let a = Event::now(Component::Driver, EventKind::NodeLost { node: NodeId(0) });
        let b = Event::now(Component::Driver, EventKind::NodeLost { node: NodeId(0) });
        assert!(b.at_nanos >= a.at_nanos);
    }
}
