//! Structured events for debugging and profiling (paper requirement R7).
//!
//! Every component appends [`Event`]s to the control plane's event log.
//! The profiling tooling in `rtml-runtime` turns the log into per-task
//! latency breakdowns and Chrome-trace timelines — the paper's "profiling
//! tools / error diagnosis" box in Figure 3.

use crate::codec::{Codec, Reader, Writer};
use crate::error::{Error, Result};
use crate::ids::{NodeId, ObjectId, TaskId, WorkerId};

/// Which subsystem emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// A driver program.
    Driver,
    /// A worker thread.
    Worker,
    /// A per-node local scheduler.
    LocalScheduler,
    /// A global scheduler.
    GlobalScheduler,
    /// A per-node object store.
    ObjectStore,
    /// The cluster supervisor (failure detection, recovery).
    Supervisor,
}

impl Codec for Component {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Component::Driver => 0,
            Component::Worker => 1,
            Component::LocalScheduler => 2,
            Component::GlobalScheduler => 3,
            Component::ObjectStore => 4,
            Component::Supervisor => 5,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => Component::Driver,
            1 => Component::Worker,
            2 => Component::LocalScheduler,
            3 => Component::GlobalScheduler,
            4 => Component::ObjectStore,
            5 => Component::Supervisor,
            other => return Err(Error::Codec(format!("invalid Component tag {other}"))),
        })
    }
}

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A task was submitted (driver or nested worker submission).
    TaskSubmitted { task: TaskId },
    /// The local scheduler queued the task for local execution.
    TaskQueuedLocal { task: TaskId, node: NodeId },
    /// The local scheduler spilled the task to the global scheduler.
    TaskSpilled { task: TaskId, from: NodeId },
    /// The global scheduler placed the task on a node.
    TaskPlaced { task: TaskId, node: NodeId },
    /// A worker began executing the task.
    TaskStarted { task: TaskId, worker: WorkerId },
    /// The task finished and sealed its return objects.
    TaskFinished {
        task: TaskId,
        worker: WorkerId,
        micros: u64,
    },
    /// The task raised an application error.
    TaskFailed { task: TaskId, message: String },
    /// A task was resubmitted by lineage reconstruction.
    TaskReconstructed { task: TaskId, attempt: u32 },
    /// An object was sealed into a node's store.
    ObjectSealed {
        object: ObjectId,
        node: NodeId,
        size: u64,
    },
    /// An object was evicted from a node's store.
    ObjectEvicted { object: ObjectId, node: NodeId },
    /// A cross-node object transfer began.
    TransferStarted {
        object: ObjectId,
        from: NodeId,
        to: NodeId,
    },
    /// A local scheduler proactively requested an object at task-queue
    /// time, overlapping the transfer with queueing (dispatch-time
    /// prefetch). A subsequent `ObjectSealed` on the same node is a
    /// prefetch hit.
    PrefetchIssued { object: ObjectId, node: NodeId },
    /// A cross-node object transfer completed.
    TransferFinished {
        object: ObjectId,
        to: NodeId,
        micros: u64,
    },
    /// A ready task was pulled from a loaded node by an idle peer (the
    /// steal plane): ownership moved from `from` to `to` before the
    /// grant left the victim.
    TaskStolen {
        task: TaskId,
        from: NodeId,
        to: NodeId,
    },
    /// A worker was killed (failure injection or crash).
    WorkerLost { worker: WorkerId },
    /// A node was killed.
    NodeLost { node: NodeId },
    /// A node's components were restarted after failure.
    NodeRestarted { node: NodeId },
}

impl EventKind {
    /// The task this event concerns, if any — used by the profiler to
    /// group events into per-task timelines.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            EventKind::TaskSubmitted { task }
            | EventKind::TaskQueuedLocal { task, .. }
            | EventKind::TaskSpilled { task, .. }
            | EventKind::TaskPlaced { task, .. }
            | EventKind::TaskStarted { task, .. }
            | EventKind::TaskFinished { task, .. }
            | EventKind::TaskFailed { task, .. }
            | EventKind::TaskReconstructed { task, .. }
            | EventKind::TaskStolen { task, .. } => Some(*task),
            _ => None,
        }
    }

    /// Short stable label for trace output.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TaskSubmitted { .. } => "task_submitted",
            EventKind::TaskQueuedLocal { .. } => "task_queued_local",
            EventKind::TaskSpilled { .. } => "task_spilled",
            EventKind::TaskPlaced { .. } => "task_placed",
            EventKind::TaskStarted { .. } => "task_started",
            EventKind::TaskFinished { .. } => "task_finished",
            EventKind::TaskFailed { .. } => "task_failed",
            EventKind::TaskReconstructed { .. } => "task_reconstructed",
            EventKind::TaskStolen { .. } => "task_stolen",
            EventKind::ObjectSealed { .. } => "object_sealed",
            EventKind::ObjectEvicted { .. } => "object_evicted",
            EventKind::TransferStarted { .. } => "transfer_started",
            EventKind::PrefetchIssued { .. } => "prefetch_issued",
            EventKind::TransferFinished { .. } => "transfer_finished",
            EventKind::WorkerLost { .. } => "worker_lost",
            EventKind::NodeLost { .. } => "node_lost",
            EventKind::NodeRestarted { .. } => "node_restarted",
        }
    }
}

impl Codec for EventKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            EventKind::TaskSubmitted { task } => {
                w.put_u8(0);
                task.encode(w);
            }
            EventKind::TaskQueuedLocal { task, node } => {
                w.put_u8(1);
                task.encode(w);
                node.encode(w);
            }
            EventKind::TaskSpilled { task, from } => {
                w.put_u8(2);
                task.encode(w);
                from.encode(w);
            }
            EventKind::TaskPlaced { task, node } => {
                w.put_u8(3);
                task.encode(w);
                node.encode(w);
            }
            EventKind::TaskStarted { task, worker } => {
                w.put_u8(4);
                task.encode(w);
                worker.encode(w);
            }
            EventKind::TaskFinished {
                task,
                worker,
                micros,
            } => {
                w.put_u8(5);
                task.encode(w);
                worker.encode(w);
                w.put_varint(*micros);
            }
            EventKind::TaskFailed { task, message } => {
                w.put_u8(6);
                task.encode(w);
                message.encode(w);
            }
            EventKind::TaskReconstructed { task, attempt } => {
                w.put_u8(7);
                task.encode(w);
                w.put_u32(*attempt);
            }
            EventKind::ObjectSealed { object, node, size } => {
                w.put_u8(8);
                object.encode(w);
                node.encode(w);
                w.put_varint(*size);
            }
            EventKind::ObjectEvicted { object, node } => {
                w.put_u8(9);
                object.encode(w);
                node.encode(w);
            }
            EventKind::TransferStarted { object, from, to } => {
                w.put_u8(10);
                object.encode(w);
                from.encode(w);
                to.encode(w);
            }
            EventKind::TransferFinished { object, to, micros } => {
                w.put_u8(11);
                object.encode(w);
                to.encode(w);
                w.put_varint(*micros);
            }
            EventKind::WorkerLost { worker } => {
                w.put_u8(12);
                worker.encode(w);
            }
            EventKind::NodeLost { node } => {
                w.put_u8(13);
                node.encode(w);
            }
            EventKind::NodeRestarted { node } => {
                w.put_u8(14);
                node.encode(w);
            }
            EventKind::PrefetchIssued { object, node } => {
                w.put_u8(15);
                object.encode(w);
                node.encode(w);
            }
            EventKind::TaskStolen { task, from, to } => {
                w.put_u8(16);
                task.encode(w);
                from.encode(w);
                to.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => EventKind::TaskSubmitted {
                task: TaskId::decode(r)?,
            },
            1 => EventKind::TaskQueuedLocal {
                task: TaskId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            2 => EventKind::TaskSpilled {
                task: TaskId::decode(r)?,
                from: NodeId::decode(r)?,
            },
            3 => EventKind::TaskPlaced {
                task: TaskId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            4 => EventKind::TaskStarted {
                task: TaskId::decode(r)?,
                worker: WorkerId::decode(r)?,
            },
            5 => EventKind::TaskFinished {
                task: TaskId::decode(r)?,
                worker: WorkerId::decode(r)?,
                micros: r.take_varint()?,
            },
            6 => EventKind::TaskFailed {
                task: TaskId::decode(r)?,
                message: String::decode(r)?,
            },
            7 => EventKind::TaskReconstructed {
                task: TaskId::decode(r)?,
                attempt: r.take_u32()?,
            },
            8 => EventKind::ObjectSealed {
                object: ObjectId::decode(r)?,
                node: NodeId::decode(r)?,
                size: r.take_varint()?,
            },
            9 => EventKind::ObjectEvicted {
                object: ObjectId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            10 => EventKind::TransferStarted {
                object: ObjectId::decode(r)?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
            },
            11 => EventKind::TransferFinished {
                object: ObjectId::decode(r)?,
                to: NodeId::decode(r)?,
                micros: r.take_varint()?,
            },
            12 => EventKind::WorkerLost {
                worker: WorkerId::decode(r)?,
            },
            13 => EventKind::NodeLost {
                node: NodeId::decode(r)?,
            },
            14 => EventKind::NodeRestarted {
                node: NodeId::decode(r)?,
            },
            15 => EventKind::PrefetchIssued {
                object: ObjectId::decode(r)?,
                node: NodeId::decode(r)?,
            },
            16 => EventKind::TaskStolen {
                task: TaskId::decode(r)?,
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
            },
            other => return Err(Error::Codec(format!("invalid EventKind tag {other}"))),
        })
    }
}

/// One timestamped event-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process epoch (see [`crate::time`]).
    pub at_nanos: u64,
    /// Emitting subsystem.
    pub component: Component,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event stamped with the current time.
    pub fn now(component: Component, kind: EventKind) -> Self {
        Event {
            at_nanos: crate::time::now_nanos(),
            component,
            kind,
        }
    }
}

impl Codec for Event {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.at_nanos);
        self.component.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Event {
            at_nanos: r.take_varint()?,
            component: Component::decode(r)?,
            kind: EventKind::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_bytes};
    use crate::ids::DriverId;

    #[test]
    fn all_event_kinds_round_trip() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        let o = t.return_object(0);
        let n = NodeId(1);
        let wk = WorkerId::new(n, 2);
        let kinds = vec![
            EventKind::TaskSubmitted { task: t },
            EventKind::TaskQueuedLocal { task: t, node: n },
            EventKind::TaskSpilled { task: t, from: n },
            EventKind::TaskPlaced { task: t, node: n },
            EventKind::TaskStarted {
                task: t,
                worker: wk,
            },
            EventKind::TaskFinished {
                task: t,
                worker: wk,
                micros: 123,
            },
            EventKind::TaskFailed {
                task: t,
                message: "m".into(),
            },
            EventKind::TaskReconstructed {
                task: t,
                attempt: 2,
            },
            EventKind::ObjectSealed {
                object: o,
                node: n,
                size: 64,
            },
            EventKind::ObjectEvicted { object: o, node: n },
            EventKind::TransferStarted {
                object: o,
                from: n,
                to: NodeId(2),
            },
            EventKind::TransferFinished {
                object: o,
                to: NodeId(2),
                micros: 5,
            },
            EventKind::WorkerLost { worker: wk },
            EventKind::NodeLost { node: n },
            EventKind::NodeRestarted { node: n },
            EventKind::PrefetchIssued { object: o, node: n },
            EventKind::TaskStolen {
                task: t,
                from: n,
                to: NodeId(2),
            },
        ];
        for kind in kinds {
            let ev = Event {
                at_nanos: 42,
                component: Component::Worker,
                kind: kind.clone(),
            };
            let bytes = encode_to_bytes(&ev);
            let back: Event = decode_from_slice(&bytes).unwrap();
            assert_eq!(ev, back, "kind {}", kind.label());
        }
    }

    #[test]
    fn task_extraction() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let t = root.child(0);
        assert_eq!(EventKind::TaskSubmitted { task: t }.task(), Some(t));
        assert_eq!(EventKind::NodeLost { node: NodeId(0) }.task(), None);
    }

    #[test]
    fn now_uses_monotonic_epoch() {
        let a = Event::now(Component::Driver, EventKind::NodeLost { node: NodeId(0) });
        let b = Event::now(Component::Driver, EventKind::NodeLost { node: NodeId(0) });
        assert!(b.at_nanos >= a.at_nanos);
    }
}
