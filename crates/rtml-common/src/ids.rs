//! Deterministic 128-bit identifiers.
//!
//! The paper's control plane shards by key hash and reconstructs lost data
//! by replaying lineage. Both properties hinge on identifier discipline:
//!
//! - **Task IDs** are derived from the parent task's ID plus a per-parent
//!   submission counter, so replaying a deterministic task regenerates the
//!   same child task IDs.
//! - **Object IDs** are derived from the producing task's ID plus the
//!   return-value index, so a replayed task writes its results to the same
//!   object IDs that consumers are already waiting on.
//!
//! All identifiers hash through a 128-bit FNV-1a construction; no external
//! hashing crates are needed and the values are stable across runs,
//! platforms, and processes.

use std::fmt;

use crate::codec::{Codec, Reader, Writer};
use crate::error::Result;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit identifier with a stable, platform-independent representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UniqueId(u128);

impl UniqueId {
    /// The all-zero identifier, used as the root of ID derivation chains.
    pub const NIL: UniqueId = UniqueId(0);

    /// Builds an identifier directly from a `u128`.
    pub const fn from_u128(value: u128) -> Self {
        UniqueId(value)
    }

    /// Returns the raw 128-bit value.
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Hashes arbitrary bytes into an identifier (FNV-1a, 128-bit).
    pub fn hash_bytes(bytes: &[u8]) -> Self {
        let mut state = FNV_OFFSET;
        for &b in bytes {
            state ^= b as u128;
            state = state.wrapping_mul(FNV_PRIME);
        }
        UniqueId(state)
    }

    /// Derives a child identifier from `self` and a domain-separation tag
    /// plus counter. Used for task / object ID chains.
    pub fn derive(self, tag: u8, counter: u64) -> Self {
        let mut buf = [0u8; 16 + 1 + 8];
        buf[..16].copy_from_slice(&self.0.to_le_bytes());
        buf[16] = tag;
        buf[17..].copy_from_slice(&counter.to_le_bytes());
        UniqueId::hash_bytes(&buf)
    }

    /// Returns the bucket index in `[0, buckets)` this ID hashes to.
    ///
    /// Used for control-plane sharding: the paper notes that because keys
    /// are hashes, sharding is straightforward.
    pub fn bucket(self, buckets: usize) -> usize {
        debug_assert!(buckets > 0, "bucket count must be positive");
        // Fold the halves so that both low and high bits contribute.
        let folded = (self.0 as u64) ^ ((self.0 >> 64) as u64);
        (folded % buckets as u64) as usize
    }
}

impl fmt::Debug for UniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Display for UniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form: high 8 hex digits are enough for human consumption.
        write!(f, "{:08x}", (self.0 >> 96) as u32)
    }
}

impl Codec for UniqueId {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(UniqueId(r.take_u128()?))
    }
}

/// Declares a strongly-typed wrapper around [`UniqueId`].
macro_rules! typed_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(UniqueId);

        impl $name {
            /// The all-zero identifier.
            pub const NIL: $name = $name(UniqueId::NIL);

            /// Wraps a raw [`UniqueId`].
            pub const fn from_unique(id: UniqueId) -> Self {
                $name(id)
            }

            /// Returns the underlying [`UniqueId`].
            pub const fn unique(self) -> UniqueId {
                self.0
            }

            /// Returns the shard bucket for this identifier.
            pub fn bucket(self, buckets: usize) -> usize {
                self.0.bucket(buckets)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl Codec for $name {
            fn encode(&self, w: &mut Writer) {
                self.0.encode(w);
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok($name(UniqueId::decode(r)?))
            }
        }
    };
}

typed_id!(
    /// Identifies a single task submission (one function invocation).
    TaskId,
    "T"
);
typed_id!(
    /// Identifies an immutable object in the distributed object store.
    ObjectId,
    "O"
);
typed_id!(
    /// Identifies a registered remote function (the function table key).
    FunctionId,
    "F"
);
typed_id!(
    /// Identifies a driver program connected to the cluster.
    DriverId,
    "D"
);
typed_id!(
    /// Identifies an actor (stateful worker extension).
    ActorId,
    "A"
);

// Domain-separation tags for ID derivation. Each derivation context uses a
// distinct tag so that, e.g., the 3rd child task and the 3rd put object of
// the same parent can never collide.
const TAG_CHILD_TASK: u8 = 1;
const TAG_RETURN_OBJECT: u8 = 2;
const TAG_PUT_OBJECT: u8 = 3;
const TAG_DRIVER_ROOT: u8 = 4;
const TAG_ACTOR: u8 = 5;
const TAG_ACTOR_METHOD: u8 = 6;

impl TaskId {
    /// Root task ID for a driver: all IDs in a driver's computation descend
    /// from this.
    pub fn driver_root(driver: DriverId) -> TaskId {
        TaskId(driver.unique().derive(TAG_DRIVER_ROOT, 0))
    }

    /// Deterministically derives the ID for the `counter`-th task submitted
    /// by `self`.
    pub fn child(self, counter: u64) -> TaskId {
        TaskId(self.0.derive(TAG_CHILD_TASK, counter))
    }

    /// Deterministically derives the ID of this task's `index`-th return
    /// object.
    pub fn return_object(self, index: u32) -> ObjectId {
        ObjectId(self.0.derive(TAG_RETURN_OBJECT, index as u64))
    }

    /// Deterministically derives the ID for the `counter`-th `put`
    /// performed by this task.
    pub fn put_object(self, counter: u64) -> ObjectId {
        ObjectId(self.0.derive(TAG_PUT_OBJECT, counter))
    }

    /// Deterministically derives an actor ID for the `counter`-th actor
    /// created by this task.
    pub fn actor(self, counter: u64) -> ActorId {
        ActorId(self.0.derive(TAG_ACTOR, counter))
    }
}

impl ActorId {
    /// Derives the task ID for the `seq`-th method call on this actor.
    pub fn method_task(self, seq: u64) -> TaskId {
        TaskId(self.0.derive(TAG_ACTOR_METHOD, seq))
    }
}

impl FunctionId {
    /// Derives a function ID from its registered name.
    ///
    /// Names are the unit of identity: re-registering the same name yields
    /// the same ID, which is what lets a restarted worker process rebuild
    /// its registry and still satisfy lineage replay.
    pub fn from_name(name: &str) -> FunctionId {
        FunctionId(UniqueId::hash_bytes(name.as_bytes()))
    }
}

impl DriverId {
    /// Builds a driver ID from a small integer handle.
    pub fn from_index(index: u64) -> DriverId {
        let mut buf = [0u8; 9];
        buf[0] = b'd';
        buf[1..].copy_from_slice(&index.to_le_bytes());
        DriverId(UniqueId::hash_bytes(&buf))
    }
}

/// Identifies a node (machine) in the cluster. Dense small integers so that
/// they double as vector indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the index form of this node ID.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl Codec for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(NodeId(r.take_u32()?))
    }
}

/// Identifies a worker thread: the node it lives on plus a per-node index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WorkerId {
    /// Node hosting the worker.
    pub node: NodeId,
    /// Index of the worker within its node.
    pub index: u32,
}

impl WorkerId {
    /// Builds a worker ID.
    pub const fn new(node: NodeId, index: u32) -> Self {
        WorkerId { node, index }
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}W{}", self.node, self.index)
    }
}

impl Codec for WorkerId {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        w.put_u32(self.index);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WorkerId {
            node: NodeId::decode(r)?,
            index: r.take_u32()?,
        })
    }
}

/// Salt for rendezvous ranking used by replica *placement* (choosing which
/// nodes receive copies of a hot object). Distinct from the read-side salt
/// space (reader node indices, which are small), so the two rankings are
/// independent hash families.
pub const REPLICA_PLACEMENT_SALT: u64 = 0x7265_706c_6963_6121; // "replica!"

/// Rendezvous (highest-random-weight) score of `node` for `(object, salt)`.
///
/// 64-bit FNV-1a over the object id, the salt, and the node index. Stable
/// across runs, platforms, and processes — the property both sides of the
/// replication plane need: every reader computes the same holder ranking
/// for the same table state, and every agent computes the same placement.
pub fn rendezvous_score(object: ObjectId, salt: u64, node: NodeId) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut buf = [0u8; 16 + 8 + 4];
    buf[..16].copy_from_slice(&object.unique().as_u128().to_le_bytes());
    buf[16..24].copy_from_slice(&salt.to_le_bytes());
    buf[24..].copy_from_slice(&node.0.to_le_bytes());
    let mut state = OFFSET;
    for &b in &buf {
        state ^= b as u64;
        state = state.wrapping_mul(PRIME);
    }
    state
}

/// Ranks `nodes` by descending rendezvous score for `(object, salt)`,
/// breaking score ties by node id so the order is total.
///
/// Two uses share this helper: a reader (salt = its node index) ranking an
/// object's holders, so K readers of one object fan out across replicas
/// instead of funnelling to one node; and the replication agent (salt =
/// [`REPLICA_PLACEMENT_SALT`]) ranking candidate nodes for new replicas,
/// so different hot objects replicate onto different nodes. Input order
/// does not matter.
pub fn rendezvous_rank(
    object: ObjectId,
    salt: u64,
    nodes: impl IntoIterator<Item = NodeId>,
) -> Vec<NodeId> {
    let mut scored: Vec<(u64, NodeId)> = nodes
        .into_iter()
        .map(|n| (rendezvous_score(object, salt, n), n))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.dedup_by_key(|(_, n)| *n);
    scored.into_iter().map(|(_, n)| n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_bytes_is_stable() {
        // Pinned value: must never change across releases, or lineage replay
        // of persisted state would break.
        let a = UniqueId::hash_bytes(b"hello");
        let b = UniqueId::hash_bytes(b"hello");
        assert_eq!(a, b);
        assert_ne!(a, UniqueId::hash_bytes(b"hellp"));
    }

    #[test]
    fn derivation_is_deterministic() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        assert_eq!(root.child(0), root.child(0));
        assert_eq!(root.return_object(1), root.return_object(1));
        assert_ne!(root.child(0), root.child(1));
    }

    #[test]
    fn derivation_domains_do_not_collide() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        // Same counter, different domains.
        let child = root.child(3).unique();
        let ret = root.return_object(3).unique();
        let put = root.put_object(3).unique();
        assert_ne!(child, ret);
        assert_ne!(child, put);
        assert_ne!(ret, put);
    }

    #[test]
    fn sibling_tasks_have_distinct_objects() {
        let root = TaskId::driver_root(DriverId::from_index(7));
        let mut seen = HashSet::new();
        for c in 0..100 {
            let t = root.child(c);
            for i in 0..3 {
                assert!(seen.insert(t.return_object(i)), "collision at {c}/{i}");
            }
        }
    }

    #[test]
    fn buckets_cover_range() {
        let mut hit = vec![false; 8];
        for i in 0..1024u64 {
            let id = UniqueId::hash_bytes(&i.to_le_bytes());
            let b = id.bucket(8);
            assert!(b < 8);
            hit[b] = true;
        }
        assert!(hit.iter().all(|&h| h), "all 8 buckets should be hit");
    }

    #[test]
    fn function_id_is_name_stable() {
        assert_eq!(
            FunctionId::from_name("simulate"),
            FunctionId::from_name("simulate")
        );
        assert_ne!(
            FunctionId::from_name("simulate"),
            FunctionId::from_name("train")
        );
    }

    #[test]
    fn display_forms_are_short() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let shown = format!("{root}");
        assert!(shown.starts_with('T'));
        assert!(shown.len() <= 12);
    }

    #[test]
    fn actor_method_chain_is_deterministic() {
        let root = TaskId::driver_root(DriverId::from_index(1));
        let actor = root.actor(0);
        assert_eq!(actor.method_task(5), actor.method_task(5));
        assert_ne!(actor.method_task(5), actor.method_task(6));
    }
}
