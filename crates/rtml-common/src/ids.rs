//! Deterministic 128-bit identifiers.
//!
//! The paper's control plane shards by key hash and reconstructs lost data
//! by replaying lineage. Both properties hinge on identifier discipline:
//!
//! - **Task IDs** are derived from the parent task's ID plus a per-parent
//!   submission counter, so replaying a deterministic task regenerates the
//!   same child task IDs.
//! - **Object IDs** are derived from the producing task's ID plus the
//!   return-value index, so a replayed task writes its results to the same
//!   object IDs that consumers are already waiting on.
//!
//! All identifiers hash through a 128-bit FNV-1a construction; no external
//! hashing crates are needed and the values are stable across runs,
//! platforms, and processes.

use std::fmt;

use crate::codec::{Codec, Reader, Writer};
use crate::error::Result;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit identifier with a stable, platform-independent representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UniqueId(u128);

impl UniqueId {
    /// The all-zero identifier, used as the root of ID derivation chains.
    pub const NIL: UniqueId = UniqueId(0);

    /// Builds an identifier directly from a `u128`.
    pub const fn from_u128(value: u128) -> Self {
        UniqueId(value)
    }

    /// Returns the raw 128-bit value.
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Hashes arbitrary bytes into an identifier (FNV-1a, 128-bit).
    pub fn hash_bytes(bytes: &[u8]) -> Self {
        let mut state = FNV_OFFSET;
        for &b in bytes {
            state ^= b as u128;
            state = state.wrapping_mul(FNV_PRIME);
        }
        UniqueId(state)
    }

    /// Derives a child identifier from `self` and a domain-separation tag
    /// plus counter. Used for task / object ID chains.
    pub fn derive(self, tag: u8, counter: u64) -> Self {
        let mut buf = [0u8; 16 + 1 + 8];
        buf[..16].copy_from_slice(&self.0.to_le_bytes());
        buf[16] = tag;
        buf[17..].copy_from_slice(&counter.to_le_bytes());
        UniqueId::hash_bytes(&buf)
    }

    /// Returns the bucket index in `[0, buckets)` this ID hashes to.
    ///
    /// Used for control-plane sharding: the paper notes that because keys
    /// are hashes, sharding is straightforward.
    pub fn bucket(self, buckets: usize) -> usize {
        debug_assert!(buckets > 0, "bucket count must be positive");
        // Fold the halves so that both low and high bits contribute.
        let folded = (self.0 as u64) ^ ((self.0 >> 64) as u64);
        (folded % buckets as u64) as usize
    }
}

impl fmt::Debug for UniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Display for UniqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form: high 8 hex digits are enough for human consumption.
        write!(f, "{:08x}", (self.0 >> 96) as u32)
    }
}

impl Codec for UniqueId {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(UniqueId(r.take_u128()?))
    }
}

/// Declares a strongly-typed wrapper around [`UniqueId`].
macro_rules! typed_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(UniqueId);

        impl $name {
            /// The all-zero identifier.
            pub const NIL: $name = $name(UniqueId::NIL);

            /// Wraps a raw [`UniqueId`].
            pub const fn from_unique(id: UniqueId) -> Self {
                $name(id)
            }

            /// Returns the underlying [`UniqueId`].
            pub const fn unique(self) -> UniqueId {
                self.0
            }

            /// Returns the shard bucket for this identifier.
            pub fn bucket(self, buckets: usize) -> usize {
                self.0.bucket(buckets)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl Codec for $name {
            fn encode(&self, w: &mut Writer) {
                self.0.encode(w);
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok($name(UniqueId::decode(r)?))
            }
        }
    };
}

typed_id!(
    /// Identifies a single task submission (one function invocation).
    TaskId,
    "T"
);
/// Identifies an immutable object in the distributed object store.
///
/// Unlike the other identifiers, an object ID carries its own lineage
/// edge: the producing task's identifier, the derivation domain, and the
/// derivation counter are embedded alongside the derived 128-bit value
/// (Ray's ObjectID does exactly this). Any holder of the ID can name the
/// producing task without a table lookup, which removes the per-object
/// declare record from the submission hot path entirely.
///
/// Identity — equality, ordering, hashing, display, and the kv key — is
/// the derived [`UniqueId`] alone; the embedded provenance is carried
/// data, not identity.
#[derive(Clone, Copy)]
pub struct ObjectId {
    unique: UniqueId,
    origin: UniqueId,
    tag: u8,
    counter: u64,
}

impl ObjectId {
    /// The all-zero identifier.
    pub const NIL: ObjectId = ObjectId {
        unique: UniqueId::NIL,
        origin: UniqueId::NIL,
        tag: 0,
        counter: 0,
    };

    /// Wraps a raw [`UniqueId`] with no provenance (producer unknown).
    pub const fn from_unique(id: UniqueId) -> Self {
        ObjectId {
            unique: id,
            origin: UniqueId::NIL,
            tag: 0,
            counter: 0,
        }
    }

    /// Returns the underlying [`UniqueId`].
    pub const fn unique(self) -> UniqueId {
        self.unique
    }

    /// Returns the shard bucket for this identifier.
    pub fn bucket(self, buckets: usize) -> usize {
        self.unique.bucket(buckets)
    }

    /// The task that produces this object, embedded at derivation time.
    ///
    /// `Some` only for task return objects — the reconstructible case.
    /// `put` objects and raw IDs report `None`: their values never came
    /// from a replayable task, which is exactly the lineage semantics
    /// the object table used to record in its declare pass.
    pub fn producer_task(self) -> Option<TaskId> {
        (self.tag == TAG_RETURN_OBJECT).then(|| TaskId::from_unique(self.origin))
    }

    /// The return index (for return objects) or put counter this ID was
    /// derived with.
    pub const fn derivation_counter(self) -> u64 {
        self.counter
    }
}

impl PartialEq for ObjectId {
    fn eq(&self, other: &Self) -> bool {
        self.unique == other.unique
    }
}

impl Eq for ObjectId {}

impl std::hash::Hash for ObjectId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.unique.hash(state);
    }
}

impl PartialOrd for ObjectId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ObjectId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.unique.cmp(&other.unique)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({:?})", self.unique)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.unique)
    }
}

impl Codec for ObjectId {
    fn encode(&self, w: &mut Writer) {
        self.unique.encode(w);
        self.origin.encode(w);
        w.put_u8(self.tag);
        w.put_varint(self.counter);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ObjectId {
            unique: UniqueId::decode(r)?,
            origin: UniqueId::decode(r)?,
            tag: r.take_u8()?,
            counter: r.take_varint()?,
        })
    }
}
typed_id!(
    /// Identifies a registered remote function (the function table key).
    FunctionId,
    "F"
);
typed_id!(
    /// Identifies a driver program connected to the cluster.
    DriverId,
    "D"
);
typed_id!(
    /// Identifies an actor (stateful worker extension).
    ActorId,
    "A"
);

// Domain-separation tags for ID derivation. Each derivation context uses a
// distinct tag so that, e.g., the 3rd child task and the 3rd put object of
// the same parent can never collide.
const TAG_CHILD_TASK: u8 = 1;
const TAG_RETURN_OBJECT: u8 = 2;
const TAG_PUT_OBJECT: u8 = 3;
const TAG_DRIVER_ROOT: u8 = 4;
const TAG_ACTOR: u8 = 5;
const TAG_ACTOR_METHOD: u8 = 6;
const TAG_ACTOR_RESULT: u8 = 7;

impl TaskId {
    /// Root task ID for a driver: all IDs in a driver's computation descend
    /// from this.
    pub fn driver_root(driver: DriverId) -> TaskId {
        TaskId(driver.unique().derive(TAG_DRIVER_ROOT, 0))
    }

    /// Deterministically derives the ID for the `counter`-th task submitted
    /// by `self`.
    pub fn child(self, counter: u64) -> TaskId {
        TaskId(self.0.derive(TAG_CHILD_TASK, counter))
    }

    /// Deterministically derives the ID of this task's `index`-th return
    /// object. The producing task rides inside the ID (see [`ObjectId`]).
    pub fn return_object(self, index: u32) -> ObjectId {
        ObjectId {
            unique: self.0.derive(TAG_RETURN_OBJECT, index as u64),
            origin: self.0,
            tag: TAG_RETURN_OBJECT,
            counter: index as u64,
        }
    }

    /// Deterministically derives the ID for the `counter`-th `put`
    /// performed by this task. Put objects carry no replayable producer
    /// (their values did not come from a task invocation), so
    /// [`ObjectId::producer_task`] reports `None` for them.
    pub fn put_object(self, counter: u64) -> ObjectId {
        ObjectId {
            unique: self.0.derive(TAG_PUT_OBJECT, counter),
            origin: self.0,
            tag: TAG_PUT_OBJECT,
            counter,
        }
    }

    /// Deterministically derives an actor ID for the `counter`-th actor
    /// created by this task.
    pub fn actor(self, counter: u64) -> ActorId {
        ActorId(self.0.derive(TAG_ACTOR, counter))
    }

    /// Deterministically derives the ID of this (actor-method) task's
    /// `index`-th result object. Unlike [`TaskId::return_object`], the ID
    /// reports **no** producer: actor methods close over mutable state, so
    /// replaying one is not sound — the lineage edge is deliberately
    /// absent, exactly as the actor runtime used to record via a
    /// producer-less declare.
    pub fn actor_result(self, index: u32) -> ObjectId {
        ObjectId {
            unique: self.0.derive(TAG_ACTOR_RESULT, index as u64),
            origin: self.0,
            tag: TAG_ACTOR_RESULT,
            counter: index as u64,
        }
    }
}

impl ActorId {
    /// Derives the task ID for the `seq`-th method call on this actor.
    pub fn method_task(self, seq: u64) -> TaskId {
        TaskId(self.0.derive(TAG_ACTOR_METHOD, seq))
    }
}

impl FunctionId {
    /// Derives a function ID from its registered name.
    ///
    /// Names are the unit of identity: re-registering the same name yields
    /// the same ID, which is what lets a restarted worker process rebuild
    /// its registry and still satisfy lineage replay.
    pub fn from_name(name: &str) -> FunctionId {
        FunctionId(UniqueId::hash_bytes(name.as_bytes()))
    }
}

impl DriverId {
    /// Builds a driver ID from a small integer handle.
    pub fn from_index(index: u64) -> DriverId {
        let mut buf = [0u8; 9];
        buf[0] = b'd';
        buf[1..].copy_from_slice(&index.to_le_bytes());
        DriverId(UniqueId::hash_bytes(&buf))
    }
}

/// Identifies a node (machine) in the cluster. Dense small integers so that
/// they double as vector indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the index form of this node ID.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl Codec for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(NodeId(r.take_u32()?))
    }
}

/// Identifies a worker thread: the node it lives on plus a per-node index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WorkerId {
    /// Node hosting the worker.
    pub node: NodeId,
    /// Index of the worker within its node.
    pub index: u32,
}

impl WorkerId {
    /// Builds a worker ID.
    pub const fn new(node: NodeId, index: u32) -> Self {
        WorkerId { node, index }
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}W{}", self.node, self.index)
    }
}

impl Codec for WorkerId {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        w.put_u32(self.index);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WorkerId {
            node: NodeId::decode(r)?,
            index: r.take_u32()?,
        })
    }
}

/// Salt for rendezvous ranking used by replica *placement* (choosing which
/// nodes receive copies of a hot object). Distinct from the read-side salt
/// space (reader node indices, which are small), so the two rankings are
/// independent hash families.
pub const REPLICA_PLACEMENT_SALT: u64 = 0x7265_706c_6963_6121; // "replica!"

/// Rendezvous (highest-random-weight) score of `node` for `(object, salt)`.
///
/// 64-bit FNV-1a over the object id, the salt, and the node index. Stable
/// across runs, platforms, and processes — the property both sides of the
/// replication plane need: every reader computes the same holder ranking
/// for the same table state, and every agent computes the same placement.
pub fn rendezvous_score(object: ObjectId, salt: u64, node: NodeId) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut buf = [0u8; 16 + 8 + 4];
    buf[..16].copy_from_slice(&object.unique().as_u128().to_le_bytes());
    buf[16..24].copy_from_slice(&salt.to_le_bytes());
    buf[24..].copy_from_slice(&node.0.to_le_bytes());
    let mut state = OFFSET;
    for &b in &buf {
        state ^= b as u64;
        state = state.wrapping_mul(PRIME);
    }
    state
}

/// Ranks `nodes` by descending rendezvous score for `(object, salt)`,
/// breaking score ties by node id so the order is total.
///
/// Two uses share this helper: a reader (salt = its node index) ranking an
/// object's holders, so K readers of one object fan out across replicas
/// instead of funnelling to one node; and the replication agent (salt =
/// [`REPLICA_PLACEMENT_SALT`]) ranking candidate nodes for new replicas,
/// so different hot objects replicate onto different nodes. Input order
/// does not matter.
pub fn rendezvous_rank(
    object: ObjectId,
    salt: u64,
    nodes: impl IntoIterator<Item = NodeId>,
) -> Vec<NodeId> {
    let mut scored: Vec<(u64, NodeId)> = nodes
        .into_iter()
        .map(|n| (rendezvous_score(object, salt, n), n))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.dedup_by_key(|(_, n)| *n);
    scored.into_iter().map(|(_, n)| n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_bytes_is_stable() {
        // Pinned value: must never change across releases, or lineage replay
        // of persisted state would break.
        let a = UniqueId::hash_bytes(b"hello");
        let b = UniqueId::hash_bytes(b"hello");
        assert_eq!(a, b);
        assert_ne!(a, UniqueId::hash_bytes(b"hellp"));
    }

    #[test]
    fn derivation_is_deterministic() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        assert_eq!(root.child(0), root.child(0));
        assert_eq!(root.return_object(1), root.return_object(1));
        assert_ne!(root.child(0), root.child(1));
    }

    #[test]
    fn derivation_domains_do_not_collide() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        // Same counter, different domains.
        let child = root.child(3).unique();
        let ret = root.return_object(3).unique();
        let put = root.put_object(3).unique();
        assert_ne!(child, ret);
        assert_ne!(child, put);
        assert_ne!(ret, put);
    }

    #[test]
    fn sibling_tasks_have_distinct_objects() {
        let root = TaskId::driver_root(DriverId::from_index(7));
        let mut seen = HashSet::new();
        for c in 0..100 {
            let t = root.child(c);
            for i in 0..3 {
                assert!(seen.insert(t.return_object(i)), "collision at {c}/{i}");
            }
        }
    }

    #[test]
    fn buckets_cover_range() {
        let mut hit = vec![false; 8];
        for i in 0..1024u64 {
            let id = UniqueId::hash_bytes(&i.to_le_bytes());
            let b = id.bucket(8);
            assert!(b < 8);
            hit[b] = true;
        }
        assert!(hit.iter().all(|&h| h), "all 8 buckets should be hit");
    }

    #[test]
    fn function_id_is_name_stable() {
        assert_eq!(
            FunctionId::from_name("simulate"),
            FunctionId::from_name("simulate")
        );
        assert_ne!(
            FunctionId::from_name("simulate"),
            FunctionId::from_name("train")
        );
    }

    #[test]
    fn display_forms_are_short() {
        let root = TaskId::driver_root(DriverId::from_index(0));
        let shown = format!("{root}");
        assert!(shown.starts_with('T'));
        assert!(shown.len() <= 12);
    }

    #[test]
    fn producer_rides_inside_the_object_id() {
        let root = TaskId::driver_root(DriverId::from_index(2));
        let task = root.child(9);
        // Return objects name their producer without any table lookup.
        assert_eq!(task.return_object(1).producer_task(), Some(task));
        assert_eq!(task.return_object(1).derivation_counter(), 1);
        // Puts, actor results, and raw IDs carry no replayable producer.
        assert_eq!(task.put_object(3).producer_task(), None);
        assert_eq!(task.actor_result(0).producer_task(), None);
        let raw = ObjectId::from_unique(task.return_object(1).unique());
        assert_eq!(raw.producer_task(), None);
        // Identity is the derived hash alone: a raw re-wrap is the same key.
        assert_eq!(raw, task.return_object(1));
    }

    #[test]
    fn object_id_codec_round_trips_provenance() {
        let task = TaskId::driver_root(DriverId::from_index(3)).child(4);
        for object in [task.return_object(2), task.put_object(5), ObjectId::NIL] {
            let bytes = crate::codec::encode_to_bytes(&object);
            let back: ObjectId = crate::codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(back, object);
            assert_eq!(back.producer_task(), object.producer_task());
            assert_eq!(back.derivation_counter(), object.derivation_counter());
        }
    }

    #[test]
    fn actor_method_chain_is_deterministic() {
        let root = TaskId::driver_root(DriverId::from_index(1));
        let actor = root.actor(0);
        assert_eq!(actor.method_task(5), actor.method_task(5));
        assert_ne!(actor.method_task(5), actor.method_task(6));
    }
}
