//! Latency models for the simulated fabric.

use std::time::Duration;

/// How long a cross-node message takes to propagate (excluding the
/// bandwidth term).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Instant delivery (still asynchronous, but no added delay).
    Zero,
    /// Every cross-node message takes exactly this long.
    Constant(Duration),
    /// Uniformly-distributed latency in `[min, max]`, driven by a
    /// deterministic per-fabric RNG (reproducible runs).
    Uniform(Duration, Duration),
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Zero
    }
}

impl LatencyModel {
    /// Samples a delay. `entropy` is a pre-mixed random word supplied by
    /// the fabric so the model itself stays stateless.
    pub fn sample(&self, entropy: u64) -> Duration {
        match self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(min, max) => {
                let (lo, hi) = (min.as_nanos() as u64, max.as_nanos() as u64);
                if hi <= lo {
                    return *min;
                }
                let span = hi - lo;
                Duration::from_nanos(lo + entropy % (span + 1))
            }
        }
    }

    /// The worst-case delay this model can produce, used in tests.
    pub fn upper_bound(&self) -> Duration {
        match self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(_, max) => *max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert_eq!(LatencyModel::Zero.sample(12345), Duration::ZERO);
    }

    #[test]
    fn constant_ignores_entropy() {
        let m = LatencyModel::Constant(Duration::from_micros(100));
        assert_eq!(m.sample(1), m.sample(999));
        assert_eq!(m.sample(0), Duration::from_micros(100));
    }

    #[test]
    fn uniform_stays_in_range() {
        let m = LatencyModel::Uniform(Duration::from_micros(50), Duration::from_micros(150));
        for e in 0..1000u64 {
            let d = m.sample(e.wrapping_mul(0x9e3779b97f4a7c15));
            assert!(d >= Duration::from_micros(50));
            assert!(d <= Duration::from_micros(150));
        }
    }

    #[test]
    fn degenerate_uniform_returns_min() {
        let m = LatencyModel::Uniform(Duration::from_micros(80), Duration::from_micros(80));
        assert_eq!(m.sample(7), Duration::from_micros(80));
    }

    #[test]
    fn upper_bounds() {
        assert_eq!(LatencyModel::Zero.upper_bound(), Duration::ZERO);
        assert_eq!(
            LatencyModel::Uniform(Duration::from_micros(1), Duration::from_micros(9)).upper_bound(),
            Duration::from_micros(9)
        );
    }
}
