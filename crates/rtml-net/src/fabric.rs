//! The message fabric: registration, routed delivery, delays, partitions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use rtml_common::error::{Error, Result};
use rtml_common::ids::NodeId;
use rtml_common::metrics::Counter;

use crate::latency::LatencyModel;

/// Identifies a registered endpoint on the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetAddress(u64);

impl NetAddress {
    /// Raw form, for embedding addresses in serialized messages.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an address from its raw form. The address is only
    /// meaningful on the fabric that issued it.
    pub const fn from_u64(raw: u64) -> Self {
        NetAddress(raw)
    }
}

/// Fabric configuration.
#[derive(Clone, Debug, Default)]
pub struct FabricConfig {
    /// Propagation delay applied to cross-node messages.
    pub latency: LatencyModel,
    /// Serialization bandwidth for cross-node messages; `None` means
    /// infinite (no size-dependent term).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

/// A message handed to a receiving endpoint.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Sending endpoint.
    pub from: NetAddress,
    /// Opaque payload.
    pub payload: Bytes,
    /// When the message was sent (monotonic nanos since process epoch).
    pub sent_at_nanos: u64,
}

/// A registered endpoint: an address plus the receiving side of its
/// mailbox.
pub struct Endpoint {
    address: NetAddress,
    node: NodeId,
    rx: Receiver<Delivery>,
}

impl Endpoint {
    /// This endpoint's fabric address.
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// The node the endpoint is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The mailbox receiver.
    pub fn receiver(&self) -> &Receiver<Delivery> {
        &self.rx
    }
}

/// Counters describing fabric traffic.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Messages accepted by `send`.
    pub sent: Counter,
    /// Messages delivered to a live mailbox.
    pub delivered: Counter,
    /// Messages dropped by partitions or dead mailboxes.
    pub dropped: Counter,
    /// Total payload bytes accepted.
    pub bytes: Counter,
}

struct PendingDelivery {
    due: Instant,
    seq: u64,
    to: NetAddress,
    delivery: Delivery,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest due first; seq breaks ties to preserve send order.
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

#[derive(Default)]
struct Routing {
    endpoints: HashMap<NetAddress, (NodeId, Sender<Delivery>)>,
    partitions: HashSet<(NodeId, NodeId)>,
    next_address: u64,
    next_seq: u64,
    jitter_state: u64,
}

struct DelayQueue {
    heap: Mutex<BinaryHeap<Reverse<PendingDelivery>>>,
    wakeup: Condvar,
    shutdown: Mutex<bool>,
}

/// The shared fabric. Cheap to clone via `Arc`; see crate docs.
pub struct Fabric {
    config: FabricConfig,
    routing: Mutex<Routing>,
    queue: Arc<DelayQueue>,
    /// Traffic counters.
    pub stats: FabricStats,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Fabric {
    /// Creates a fabric and starts its delivery pump thread.
    pub fn new(config: FabricConfig) -> Arc<Self> {
        let queue = Arc::new(DelayQueue {
            heap: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let fabric = Arc::new(Fabric {
            config,
            routing: Mutex::new(Routing {
                jitter_state: 0x243f6a8885a308d3,
                ..Routing::default()
            }),
            queue,
            stats: FabricStats::default(),
            pump: Mutex::new(None),
        });
        let pump_fabric = Arc::downgrade(&fabric);
        let queue2 = fabric.queue.clone();
        let handle = std::thread::Builder::new()
            .name("rtml-net-pump".into())
            .spawn(move || Self::pump_loop(queue2, pump_fabric))
            .expect("spawn fabric pump");
        *fabric.pump.lock() = Some(handle);
        fabric
    }

    /// Registers an endpoint on `node`. The `name` is only for debugging.
    pub fn register(&self, node: NodeId, _name: &str) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut routing = self.routing.lock();
        routing.next_address += 1;
        let address = NetAddress(routing.next_address);
        routing.endpoints.insert(address, (node, tx));
        Endpoint { address, node, rx }
    }

    /// Removes an endpoint (its mailbox closes; queued messages to it are
    /// dropped at delivery time).
    pub fn unregister(&self, address: NetAddress) {
        self.routing.lock().endpoints.remove(&address);
    }

    /// Partitions traffic between two nodes (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut routing = self.routing.lock();
        routing.partitions.insert((a, b));
        routing.partitions.insert((b, a));
    }

    /// Heals a partition.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut routing = self.routing.lock();
        routing.partitions.remove(&(a, b));
        routing.partitions.remove(&(b, a));
    }

    /// Whether traffic from `a` to `b` is currently dropped.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.routing.lock().partitions.contains(&(a, b))
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// Same-node messages are delivered immediately (shared-memory path).
    /// Cross-node messages pay the configured latency plus a
    /// size/bandwidth term and are delivered asynchronously by the pump
    /// thread, in send order for equal delays.
    ///
    /// Returns [`Error::Disconnected`] if either address is unregistered.
    /// Partitioned messages are silently dropped, like a real network.
    pub fn send(&self, from: NetAddress, to: NetAddress, payload: Bytes) -> Result<()> {
        let mut routing = self.routing.lock();
        let (from_node, _) = *routing
            .endpoints
            .get(&from)
            .ok_or(Error::Disconnected("fabric sender"))?;
        let (to_node, tx) = routing
            .endpoints
            .get(&to)
            .cloned()
            .ok_or(Error::Disconnected("fabric receiver"))?;

        self.stats.sent.inc();
        self.stats.bytes.add(payload.len() as u64);

        if routing.partitions.contains(&(from_node, to_node)) {
            self.stats.dropped.inc();
            return Ok(());
        }

        let delivery = Delivery {
            from,
            payload,
            sent_at_nanos: rtml_common::time::now_nanos(),
        };

        if from_node == to_node {
            drop(routing);
            if tx.send(delivery).is_ok() {
                self.stats.delivered.inc();
            } else {
                self.stats.dropped.inc();
            }
            return Ok(());
        }

        // Cross-node: compute the delay.
        routing.jitter_state = routing
            .jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let entropy = routing.jitter_state;
        routing.next_seq += 1;
        let seq = routing.next_seq;
        drop(routing);

        let mut delay = self.config.latency.sample(entropy);
        if let Some(bw) = self.config.bandwidth_bytes_per_sec {
            if bw > 0 {
                let xfer_nanos =
                    (delivery.payload.len() as u128 * 1_000_000_000u128 / bw as u128) as u64;
                delay += Duration::from_nanos(xfer_nanos);
            }
        }

        if delay.is_zero() {
            if tx.send(delivery).is_ok() {
                self.stats.delivered.inc();
            } else {
                self.stats.dropped.inc();
            }
            return Ok(());
        }

        let pending = PendingDelivery {
            due: Instant::now() + delay,
            seq,
            to,
            delivery,
        };
        {
            let mut heap = self.queue.heap.lock();
            heap.push(Reverse(pending));
        }
        self.queue.wakeup.notify_one();
        Ok(())
    }

    fn pump_loop(queue: Arc<DelayQueue>, fabric: std::sync::Weak<Fabric>) {
        loop {
            // Collect due deliveries and compute the next deadline.
            let mut due_now = Vec::new();
            let next_due: Option<Instant>;
            {
                let mut heap = queue.heap.lock();
                let now = Instant::now();
                while let Some(Reverse(head)) = heap.peek() {
                    if head.due <= now {
                        let Reverse(item) = heap.pop().expect("peeked");
                        due_now.push(item);
                    } else {
                        break;
                    }
                }
                next_due = heap.peek().map(|Reverse(p)| p.due);
            }

            if !due_now.is_empty() {
                let Some(fabric) = fabric.upgrade() else {
                    return;
                };
                for item in due_now {
                    let tx = {
                        let routing = fabric.routing.lock();
                        routing.endpoints.get(&item.to).map(|(_, tx)| tx.clone())
                    };
                    match tx {
                        Some(tx) if tx.send(item.delivery).is_ok() => {
                            fabric.stats.delivered.inc();
                        }
                        _ => fabric.stats.dropped.inc(),
                    }
                }
                continue;
            }

            // Nothing due: sleep until the next deadline or a new message.
            let mut shutdown = queue.shutdown.lock();
            if *shutdown {
                return;
            }
            match next_due {
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline > now {
                        queue.wakeup.wait_for(&mut shutdown, deadline - now);
                    }
                }
                None => {
                    queue.wakeup.wait(&mut shutdown);
                }
            }
            if *shutdown {
                return;
            }
        }
    }

    /// Number of messages queued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queue.heap.lock().len()
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        *self.queue.shutdown.lock() = true;
        self.queue.wakeup.notify_all();
        if let Some(handle) = self.pump.lock().take() {
            // The pump itself may drop the last `Arc<Fabric>` (it
            // upgrades its Weak per delivery batch); joining oneself
            // would deadlock, so detach in that case.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric_with_latency(micros: u64) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            latency: LatencyModel::Constant(Duration::from_micros(micros)),
            ..FabricConfig::default()
        })
    }

    #[test]
    fn same_node_is_immediate() {
        let fabric = fabric_with_latency(50_000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(0), "b");
        let start = Instant::now();
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        let msg = b.receiver().recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&msg.payload[..], b"x");
        // Must not have paid the 50 ms cross-node latency.
        assert!(start.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn cross_node_pays_latency() {
        let fabric = fabric_with_latency(20_000); // 20 ms
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        let start = Instant::now();
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn fifo_per_pair_under_constant_latency() {
        let fabric = fabric_with_latency(1_000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        for i in 0..100u32 {
            fabric
                .send(
                    a.address(),
                    b.address(),
                    Bytes::from(i.to_le_bytes().to_vec()),
                )
                .unwrap();
        }
        for i in 0..100u32 {
            let msg = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
            let mut arr = [0u8; 4];
            arr.copy_from_slice(&msg.payload);
            assert_eq!(u32::from_le_bytes(arr), i);
        }
    }

    #[test]
    fn bandwidth_adds_size_term() {
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
            jitter_seed: 0,
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        // 50 KB at 1 MB/s = 50 ms.
        let payload = Bytes::from(vec![0u8; 50_000]);
        let start = Instant::now();
        fabric.send(a.address(), b.address(), payload).unwrap();
        let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn partition_drops_messages() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric.partition(NodeId(0), NodeId(1));
        assert!(fabric.is_partitioned(NodeId(0), NodeId(1)));
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"lost"))
            .unwrap();
        assert!(b
            .receiver()
            .recv_timeout(Duration::from_millis(50))
            .is_err());
        assert_eq!(fabric.stats.dropped.get(), 1);

        fabric.heal(NodeId(0), NodeId(1));
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"ok"))
            .unwrap();
        assert_eq!(
            &b.receiver()
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .payload[..],
            b"ok"
        );
    }

    #[test]
    fn unknown_addresses_error() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let ghost = NetAddress(999);
        assert!(fabric.send(a.address(), ghost, Bytes::new()).is_err());
        assert!(fabric.send(ghost, a.address(), Bytes::new()).is_err());
    }

    #[test]
    fn unregistered_receiver_drops_in_flight() {
        let fabric = fabric_with_latency(10_000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        fabric.unregister(b.address());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(fabric.stats.delivered.get(), 0);
        assert_eq!(fabric.stats.dropped.get(), 1);
    }

    #[test]
    fn concurrent_senders_all_deliver() {
        let fabric = fabric_with_latency(100);
        let receiver = fabric.register(NodeId(1), "rx");
        let mut handles = Vec::new();
        for t in 0..4 {
            let fabric = fabric.clone();
            let to = receiver.address();
            handles.push(std::thread::spawn(move || {
                let from = fabric.register(NodeId(0), &format!("tx{t}"));
                for _ in 0..250 {
                    fabric
                        .send(from.address(), to, Bytes::from_static(b"m"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while receiver
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .is_ok()
        {
            got += 1;
            if got == 1000 {
                break;
            }
        }
        assert_eq!(got, 1000);
    }

    #[test]
    fn stats_track_bytes() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(0), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from(vec![0u8; 128]))
            .unwrap();
        assert_eq!(fabric.stats.bytes.get(), 128);
        assert_eq!(fabric.stats.sent.get(), 1);
    }

    #[test]
    fn shutdown_on_drop_joins_pump() {
        let fabric = fabric_with_latency(1000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        drop(a);
        drop(b);
        drop(fabric); // Must not hang.
    }
}
