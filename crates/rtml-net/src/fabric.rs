//! The message fabric: registration, routed delivery, delays, partitions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use rtml_common::error::{Error, Result};
use rtml_common::ids::NodeId;
use rtml_common::metrics::Counter;

use crate::fault::{FaultDecision, FaultPlan};
use crate::latency::LatencyModel;

/// Identifies a registered endpoint on the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetAddress(u64);

impl NetAddress {
    /// Raw form, for embedding addresses in serialized messages.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an address from its raw form. The address is only
    /// meaningful on the fabric that issued it.
    pub const fn from_u64(raw: u64) -> Self {
        NetAddress(raw)
    }
}

/// Fabric configuration.
#[derive(Clone, Debug, Default)]
pub struct FabricConfig {
    /// Propagation delay applied to cross-node messages.
    pub latency: LatencyModel,
    /// Serialization bandwidth for cross-node messages; `None` means
    /// infinite (no size-dependent term).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Deterministic fault injection plan (chaos plane). The default
    /// plan is empty: no faults, and no change to the jitter stream.
    pub faults: FaultPlan,
}

/// A message handed to a receiving endpoint.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Sending endpoint.
    pub from: NetAddress,
    /// Opaque payload.
    pub payload: Bytes,
    /// When the message was sent (monotonic nanos since process epoch).
    pub sent_at_nanos: u64,
}

/// A registered endpoint: an address plus the receiving side of its
/// mailbox.
pub struct Endpoint {
    address: NetAddress,
    node: NodeId,
    rx: Receiver<Delivery>,
}

impl Endpoint {
    /// This endpoint's fabric address.
    pub fn address(&self) -> NetAddress {
        self.address
    }

    /// The node the endpoint is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The mailbox receiver.
    pub fn receiver(&self) -> &Receiver<Delivery> {
        &self.rx
    }
}

/// An endpoint registration scoped to a guard: dropping the guard
/// unregisters the endpoint from its fabric. See
/// [`Fabric::register_guarded`].
pub struct EndpointGuard {
    endpoint: Endpoint,
    fabric: Arc<Fabric>,
}

impl std::ops::Deref for EndpointGuard {
    type Target = Endpoint;

    fn deref(&self) -> &Endpoint {
        &self.endpoint
    }
}

impl Drop for EndpointGuard {
    fn drop(&mut self) {
        self.fabric.unregister(self.endpoint.address());
    }
}

/// Counters describing fabric traffic.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Messages accepted by `send`.
    pub sent: Counter,
    /// Messages delivered to a live mailbox.
    pub delivered: Counter,
    /// Messages dropped by partitions or dead mailboxes.
    pub dropped: Counter,
    /// Total payload bytes accepted.
    pub bytes: Counter,
    /// Messages that crossed the wire inside a coalesced frame (a
    /// [`Fabric::send_batch`] of more than one payload): they shared one
    /// propagation-delay sample instead of paying per-message latency.
    pub coalesced: Counter,
    /// Frames that crossed the wire as part of a chunked stream (a
    /// [`Fabric::send_chunks`] call): pieces of one logical transfer
    /// that pipelined over the link — one propagation-delay sample, the
    /// bandwidth term for the stream's total size.
    pub chunk_frames: Counter,
    /// Total nanoseconds frames spent queued behind earlier traffic on
    /// their source node's egress link (only accrues when a bandwidth is
    /// configured). This is the fan-in hot-spot signal: K concurrent
    /// reads of one object from one holder serialize on that holder's
    /// link, and this counter is where the waiting shows up.
    pub egress_wait_nanos: Counter,
    /// Messages silently dropped by the fault plan (injected drops and
    /// scheduled partition windows; also counted in `dropped`).
    pub injected_drops: Counter,
    /// Messages the fault plan delivered twice.
    pub injected_dups: Counter,
    /// Messages that drew an injected delay spike.
    pub injected_delays: Counter,
    /// Messages slowed by a gray (degraded, not dead) link.
    pub injected_gray: Counter,
}

/// How a group of payloads entered the fabric, for stats attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FrameKind {
    /// A plain single-message `send`.
    Single,
    /// Distinct messages coalesced to share a hop (`send_batch`).
    Batch,
    /// Pieces of one streamed transfer (`send_chunks`).
    Chunked,
}

/// One scheduled wire crossing: a frame of one or more messages to the
/// same destination that share a single delay sample. Batched sends are
/// the fabric-level face of the end-to-end batching discipline — N
/// queued messages to one destination cost one hop, not N.
struct PendingDelivery {
    due: Instant,
    seq: u64,
    to: NetAddress,
    frames: Vec<Delivery>,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest due first; seq breaks ties to preserve send order.
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

#[derive(Default)]
struct Routing {
    endpoints: HashMap<NetAddress, (NodeId, Sender<Delivery>)>,
    partitions: HashSet<(NodeId, NodeId)>,
    next_address: u64,
    next_seq: u64,
    jitter_state: u64,
    /// Dedicated RNG state for the fault plan, separate from
    /// `jitter_state` so enabling faults never perturbs the latency
    /// jitter stream (and a fault-free run stays byte-identical).
    fault_state: u64,
    /// Per-node egress link occupancy: the instant each node's outbound
    /// link finishes serializing everything already accepted. Only
    /// maintained when a bandwidth is configured — with infinite
    /// bandwidth frames never contend and the map stays empty.
    egress_busy: HashMap<NodeId, Instant>,
}

struct DelayQueue {
    heap: Mutex<BinaryHeap<Reverse<PendingDelivery>>>,
    wakeup: Condvar,
    shutdown: Mutex<bool>,
}

/// The shared fabric. Cheap to clone via `Arc`; see crate docs.
pub struct Fabric {
    config: FabricConfig,
    routing: Mutex<Routing>,
    queue: Arc<DelayQueue>,
    /// Traffic counters.
    pub stats: FabricStats,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Creation instant; the fault plan's schedule windows are
    /// evaluated against time elapsed since this epoch.
    epoch: Instant,
}

impl Fabric {
    /// Creates a fabric and starts its delivery pump thread.
    pub fn new(config: FabricConfig) -> Arc<Self> {
        let queue = Arc::new(DelayQueue {
            heap: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let fault_seed = config.faults.seed;
        let fabric = Arc::new(Fabric {
            config,
            routing: Mutex::new(Routing {
                jitter_state: 0x243f6a8885a308d3,
                fault_state: fault_seed ^ 0x9e3779b97f4a7c15,
                ..Routing::default()
            }),
            queue,
            stats: FabricStats::default(),
            pump: Mutex::new(None),
            epoch: Instant::now(),
        });
        let pump_fabric = Arc::downgrade(&fabric);
        let queue2 = fabric.queue.clone();
        let handle = std::thread::Builder::new()
            .name("rtml-net-pump".into())
            .spawn(move || Self::pump_loop(queue2, pump_fabric))
            .expect("spawn fabric pump");
        *fabric.pump.lock() = Some(handle);
        fabric
    }

    /// Registers the fabric's traffic counters on `registry` under the
    /// `fabric.` prefix. The fabric is cluster-wide shared state, so
    /// per-node samplers reading these see the same totals — consumers
    /// should treat the columns as cluster aggregates.
    pub fn register_metrics(self: &Arc<Self>, registry: &rtml_common::metrics::MetricsRegistry) {
        let f = self.clone();
        registry.register_value("fabric.sent", move || f.stats.sent.get());
        let f = self.clone();
        registry.register_value("fabric.delivered", move || f.stats.delivered.get());
        let f = self.clone();
        registry.register_value("fabric.dropped", move || f.stats.dropped.get());
        let f = self.clone();
        registry.register_value("fabric.bytes", move || f.stats.bytes.get());
        let f = self.clone();
        registry.register_value("fabric.coalesced", move || f.stats.coalesced.get());
        let f = self.clone();
        registry.register_value("fabric.chunk_frames", move || f.stats.chunk_frames.get());
        let f = self.clone();
        registry.register_value("fabric.egress_wait_nanos", move || {
            f.stats.egress_wait_nanos.get()
        });
        let f = self.clone();
        registry.register_value("fabric.injected_drops", move || {
            f.stats.injected_drops.get()
        });
        let f = self.clone();
        registry.register_value("fabric.injected_dups", move || f.stats.injected_dups.get());
        let f = self.clone();
        registry.register_value("fabric.injected_delays", move || {
            f.stats.injected_delays.get()
        });
        let f = self.clone();
        registry.register_value("fabric.injected_gray", move || f.stats.injected_gray.get());
    }

    /// Registers an endpoint on `node`. The `name` is only for debugging.
    pub fn register(&self, node: NodeId, _name: &str) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut routing = self.routing.lock();
        routing.next_address += 1;
        let address = NetAddress(routing.next_address);
        routing.endpoints.insert(address, (node, tx));
        Endpoint { address, node, rx }
    }

    /// Registers an endpoint whose registration is scoped to the returned
    /// guard: dropping the guard unregisters it unconditionally, on every
    /// exit path. Short-lived endpoints must use this — a `register`
    /// paired with a manual `unregister` leaks the mailbox on any early
    /// return between the two.
    pub fn register_guarded(self: &Arc<Self>, node: NodeId, name: &str) -> EndpointGuard {
        EndpointGuard {
            endpoint: self.register(node, name),
            fabric: self.clone(),
        }
    }

    /// Number of endpoints currently registered. Leak detector for tests:
    /// transient protocol exchanges must leave this unchanged.
    pub fn endpoint_count(&self) -> usize {
        self.routing.lock().endpoints.len()
    }

    /// Removes an endpoint (its mailbox closes; queued messages to it are
    /// dropped at delivery time).
    pub fn unregister(&self, address: NetAddress) {
        self.routing.lock().endpoints.remove(&address);
    }

    /// Partitions traffic between two nodes (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut routing = self.routing.lock();
        routing.partitions.insert((a, b));
        routing.partitions.insert((b, a));
    }

    /// Heals a partition.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut routing = self.routing.lock();
        routing.partitions.remove(&(a, b));
        routing.partitions.remove(&(b, a));
    }

    /// Whether traffic from `a` to `b` is currently dropped.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.routing.lock().partitions.contains(&(a, b))
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// Same-node messages are delivered immediately (shared-memory path).
    /// Cross-node messages pay the configured latency plus a
    /// size/bandwidth term and are delivered asynchronously by the pump
    /// thread, in send order for equal delays.
    ///
    /// Returns [`Error::Disconnected`] if either address is unregistered.
    /// Partitioned messages are silently dropped, like a real network.
    pub fn send(&self, from: NetAddress, to: NetAddress, payload: Bytes) -> Result<()> {
        self.send_frames(from, to, vec![payload], FrameKind::Single)
    }

    /// Sends several payloads from `from` to `to` as **one coalesced
    /// frame**: the whole group pays a single propagation-delay sample
    /// (plus the bandwidth term for its total size) and arrives
    /// together, in order. The receiver still observes one [`Delivery`]
    /// per payload — coalescing changes when messages cross the wire,
    /// not how they are consumed.
    ///
    /// This preserves per-hop latency semantics: a batch costs exactly
    /// what one message costs in latency, which is the point — queued
    /// messages to the same destination should share hops.
    pub fn send_batch(&self, from: NetAddress, to: NetAddress, payloads: Vec<Bytes>) -> Result<()> {
        self.send_frames(from, to, payloads, FrameKind::Batch)
    }

    /// Sends the pieces of **one logical transfer** (e.g. a chunked
    /// object) as a pipelined stream: like [`Fabric::send_batch`], the
    /// stream pays a single propagation-delay sample plus the bandwidth
    /// term for its total size, and the receiver observes one
    /// [`Delivery`] per chunk, in order. Counted separately
    /// ([`FabricStats::chunk_frames`]) so experiments can distinguish
    /// "messages that shared a hop" from "frames of one streamed
    /// object".
    pub fn send_chunks(&self, from: NetAddress, to: NetAddress, chunks: Vec<Bytes>) -> Result<()> {
        self.send_frames(from, to, chunks, FrameKind::Chunked)
    }

    fn send_frames(
        &self,
        from: NetAddress,
        to: NetAddress,
        payloads: Vec<Bytes>,
        kind: FrameKind,
    ) -> Result<()> {
        let mut routing = self.routing.lock();
        let (from_node, _) = *routing
            .endpoints
            .get(&from)
            .ok_or(Error::Disconnected("fabric sender"))?;
        let (to_node, tx) = routing
            .endpoints
            .get(&to)
            .cloned()
            .ok_or(Error::Disconnected("fabric receiver"))?;

        if payloads.is_empty() {
            return Ok(());
        }
        let count = payloads.len() as u64;
        let total_bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
        self.stats.sent.add(count);
        self.stats.bytes.add(total_bytes);
        match kind {
            FrameKind::Batch if count > 1 => self.stats.coalesced.add(count),
            FrameKind::Chunked => self.stats.chunk_frames.add(count),
            _ => {}
        }

        if routing.partitions.contains(&(from_node, to_node)) {
            self.stats.dropped.add(count);
            return Ok(());
        }

        let sent_at_nanos = rtml_common::time::now_nanos();
        let frames: Vec<Delivery> = payloads
            .into_iter()
            .map(|payload| Delivery {
                from,
                payload,
                sent_at_nanos,
            })
            .collect();

        if from_node == to_node {
            drop(routing);
            self.deliver_frames(&tx, frames);
            return Ok(());
        }

        // Chaos plane: consult the fault plan before the frame touches
        // the egress link. Injected drops and scheduled partition
        // windows behave exactly like the static partition path above
        // (silently dropped), but are additionally counted as injected
        // so experiments can assert the chaos they scripted happened.
        let mut fault = FaultDecision::default();
        if self.config.faults.is_active() {
            let elapsed = self.epoch.elapsed();
            let state = &mut routing.fault_state;
            fault = self.config.faults.decide(from_node, to_node, elapsed, || {
                *state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *state
            });
            if fault.drop {
                self.stats.dropped.add(count);
                self.stats.injected_drops.add(count);
                return Ok(());
            }
            if fault.duplicate {
                self.stats.injected_dups.add(count);
            }
            if fault.spiked {
                self.stats.injected_delays.add(count);
            }
            if !fault.gray.is_zero() {
                self.stats.injected_gray.add(count);
            }
        }

        // Cross-node: one delay sample for the whole frame.
        routing.jitter_state = routing
            .jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let entropy = routing.jitter_state;
        routing.next_seq += 1;
        let seq = routing.next_seq;
        // A duplicated frame gets its own sequence number so the pair
        // stays ordered behind the original in the delay queue.
        let dup_seq = if fault.duplicate {
            routing.next_seq += 1;
            Some(routing.next_seq)
        } else {
            None
        };

        // Bandwidth models a *serialized* egress link, not just a
        // size-proportional delay: a frame cannot start transmitting
        // until everything the node already accepted has drained, so
        // concurrent transfers out of one node queue behind each other.
        // This is the fan-in hot-spot replication exists to spread —
        // with infinite bandwidth the term (and the queueing) vanishes.
        let now = Instant::now();
        let mut departs = now;
        if let Some(bw) = self.config.bandwidth_bytes_per_sec {
            if bw > 0 {
                let xfer_nanos = (total_bytes as u128 * 1_000_000_000u128 / bw as u128) as u64;
                let link_free = routing
                    .egress_busy
                    .get(&from_node)
                    .copied()
                    .unwrap_or(now)
                    .max(now);
                self.stats
                    .egress_wait_nanos
                    .add(link_free.duration_since(now).as_nanos() as u64);
                departs = link_free + Duration::from_nanos(xfer_nanos);
                routing.egress_busy.insert(from_node, departs);
            }
        }
        drop(routing);

        let due = departs + self.config.latency.sample(entropy) + fault.extra_delay();
        if due <= now {
            if dup_seq.is_some() {
                self.deliver_frames(&tx, frames.clone());
            }
            self.deliver_frames(&tx, frames);
            return Ok(());
        }

        let pending = PendingDelivery {
            due,
            seq,
            to,
            frames,
        };
        {
            let mut heap = self.queue.heap.lock();
            if let Some(dup_seq) = dup_seq {
                heap.push(Reverse(PendingDelivery {
                    due,
                    seq: dup_seq,
                    to,
                    frames: pending.frames.clone(),
                }));
            }
            heap.push(Reverse(pending));
        }
        self.queue.wakeup.notify_one();
        Ok(())
    }

    fn deliver_frames(&self, tx: &Sender<Delivery>, frames: Vec<Delivery>) {
        for frame in frames {
            if tx.send(frame).is_ok() {
                self.stats.delivered.inc();
            } else {
                self.stats.dropped.inc();
            }
        }
    }

    fn pump_loop(queue: Arc<DelayQueue>, fabric: std::sync::Weak<Fabric>) {
        loop {
            // Collect due deliveries and compute the next deadline.
            let mut due_now = Vec::new();
            let next_due: Option<Instant>;
            {
                let mut heap = queue.heap.lock();
                let now = Instant::now();
                while let Some(Reverse(head)) = heap.peek() {
                    if head.due <= now {
                        let Reverse(item) = heap.pop().expect("peeked");
                        due_now.push(item);
                    } else {
                        break;
                    }
                }
                next_due = heap.peek().map(|Reverse(p)| p.due);
            }

            if !due_now.is_empty() {
                let Some(fabric) = fabric.upgrade() else {
                    return;
                };
                // Resolve each destination mailbox once per flush: frames
                // due together for the same endpoint share the lookup.
                let mut resolved: HashMap<NetAddress, Option<Sender<Delivery>>> = HashMap::new();
                for item in due_now {
                    let tx = resolved.entry(item.to).or_insert_with(|| {
                        let routing = fabric.routing.lock();
                        routing.endpoints.get(&item.to).map(|(_, tx)| tx.clone())
                    });
                    match tx {
                        Some(tx) => {
                            for frame in item.frames {
                                if tx.send(frame).is_ok() {
                                    fabric.stats.delivered.inc();
                                } else {
                                    fabric.stats.dropped.inc();
                                }
                            }
                        }
                        None => fabric.stats.dropped.add(item.frames.len() as u64),
                    }
                }
                continue;
            }

            // Nothing due: sleep until the next deadline or a new message.
            let mut shutdown = queue.shutdown.lock();
            if *shutdown {
                return;
            }
            match next_due {
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline > now {
                        queue.wakeup.wait_for(&mut shutdown, deadline - now);
                    }
                }
                None => {
                    queue.wakeup.wait(&mut shutdown);
                }
            }
            if *shutdown {
                return;
            }
        }
    }

    /// Number of messages queued but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.queue.heap.lock().len()
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        *self.queue.shutdown.lock() = true;
        self.queue.wakeup.notify_all();
        if let Some(handle) = self.pump.lock().take() {
            // The pump itself may drop the last `Arc<Fabric>` (it
            // upgrades its Weak per delivery batch); joining oneself
            // would deadlock, so detach in that case.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric_with_latency(micros: u64) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            latency: LatencyModel::Constant(Duration::from_micros(micros)),
            ..FabricConfig::default()
        })
    }

    #[test]
    fn same_node_is_immediate() {
        let fabric = fabric_with_latency(50_000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(0), "b");
        let start = Instant::now();
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        let msg = b.receiver().recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&msg.payload[..], b"x");
        // Must not have paid the 50 ms cross-node latency.
        assert!(start.elapsed() < Duration::from_millis(40));
    }

    #[test]
    fn cross_node_pays_latency() {
        let fabric = fabric_with_latency(20_000); // 20 ms
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        let start = Instant::now();
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn fifo_per_pair_under_constant_latency() {
        let fabric = fabric_with_latency(1_000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        for i in 0..100u32 {
            fabric
                .send(
                    a.address(),
                    b.address(),
                    Bytes::from(i.to_le_bytes().to_vec()),
                )
                .unwrap();
        }
        for i in 0..100u32 {
            let msg = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
            let mut arr = [0u8; 4];
            arr.copy_from_slice(&msg.payload);
            assert_eq!(u32::from_le_bytes(arr), i);
        }
    }

    #[test]
    fn bandwidth_adds_size_term() {
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
            jitter_seed: 0,
            ..FabricConfig::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        // 50 KB at 1 MB/s = 50 ms.
        let payload = Bytes::from(vec![0u8; 50_000]);
        let start = Instant::now();
        fabric.send(a.address(), b.address(), payload).unwrap();
        let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn batch_pays_one_latency_for_all_frames() {
        let fabric = fabric_with_latency(20_000); // 20 ms
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        let payloads: Vec<Bytes> = (0..10u32)
            .map(|i| Bytes::from(i.to_le_bytes().to_vec()))
            .collect();
        let start = Instant::now();
        fabric
            .send_batch(a.address(), b.address(), payloads)
            .unwrap();
        for i in 0..10u32 {
            let msg = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
            let mut arr = [0u8; 4];
            arr.copy_from_slice(&msg.payload);
            assert_eq!(u32::from_le_bytes(arr), i);
        }
        let elapsed = start.elapsed();
        // One hop, not ten: well under 10 x 20 ms.
        assert!(elapsed >= Duration::from_millis(20));
        assert!(elapsed < Duration::from_millis(100), "elapsed {elapsed:?}");
        assert_eq!(fabric.stats.coalesced.get(), 10);
        assert_eq!(fabric.stats.delivered.get(), 10);
    }

    #[test]
    fn batch_bandwidth_term_uses_total_size() {
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
            jitter_seed: 0,
            ..FabricConfig::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        // 5 x 10 KB at 1 MB/s = 50 ms for the whole frame.
        let payloads: Vec<Bytes> = (0..5).map(|_| Bytes::from(vec![0u8; 10_000])).collect();
        let start = Instant::now();
        fabric
            .send_batch(a.address(), b.address(), payloads)
            .unwrap();
        for _ in 0..5 {
            let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn concurrent_transfers_serialize_on_source_egress() {
        // 1 MB/s, two 50 KB sends back to back from one node: the second
        // queues behind the first on the egress link, so the pair takes
        // ~100 ms, not ~50 ms — the fan-in hot-spot the replication
        // plane spreads.
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            bandwidth_bytes_per_sec: Some(1_000_000),
            jitter_seed: 0,
            ..FabricConfig::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        let start = Instant::now();
        for _ in 0..2 {
            fabric
                .send(a.address(), b.address(), Bytes::from(vec![0u8; 50_000]))
                .unwrap();
        }
        for _ in 0..2 {
            let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(95));
        // The second frame's wait behind the first is accounted.
        assert!(fabric.stats.egress_wait_nanos.get() >= 40_000_000);
    }

    #[test]
    fn distinct_sources_do_not_contend() {
        // The same two transfers from *different* nodes overlap: egress
        // serialization is per source link, not global.
        let fabric = Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            bandwidth_bytes_per_sec: Some(1_000_000),
            jitter_seed: 0,
            ..FabricConfig::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let c = fabric.register(NodeId(2), "c");
        let b = fabric.register(NodeId(1), "b");
        let start = Instant::now();
        fabric
            .send(a.address(), b.address(), Bytes::from(vec![0u8; 50_000]))
            .unwrap();
        fabric
            .send(c.address(), b.address(), Bytes::from(vec![0u8; 50_000]))
            .unwrap();
        for _ in 0..2 {
            let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(45));
        assert!(elapsed < Duration::from_millis(95), "elapsed {elapsed:?}");
        assert_eq!(fabric.stats.egress_wait_nanos.get(), 0);
    }

    #[test]
    fn batch_to_partitioned_destination_drops_all() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric.partition(NodeId(0), NodeId(1));
        fabric
            .send_batch(
                a.address(),
                b.address(),
                vec![Bytes::from_static(b"x"), Bytes::from_static(b"y")],
            )
            .unwrap();
        assert!(b
            .receiver()
            .recv_timeout(Duration::from_millis(50))
            .is_err());
        assert_eq!(fabric.stats.dropped.get(), 2);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(0), "b");
        fabric.send_batch(a.address(), b.address(), vec![]).unwrap();
        assert_eq!(fabric.stats.sent.get(), 0);
    }

    #[test]
    fn chunk_stream_pays_one_latency_and_counts_chunk_frames() {
        let fabric = fabric_with_latency(20_000); // 20 ms
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        let chunks: Vec<Bytes> = (0..8).map(|_| Bytes::from(vec![0u8; 64])).collect();
        let start = Instant::now();
        fabric
            .send_chunks(a.address(), b.address(), chunks)
            .unwrap();
        for _ in 0..8 {
            let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(20));
        assert!(elapsed < Duration::from_millis(100), "elapsed {elapsed:?}");
        assert_eq!(fabric.stats.chunk_frames.get(), 8);
        assert_eq!(fabric.stats.coalesced.get(), 0);
    }

    #[test]
    fn endpoint_guard_unregisters_on_drop() {
        let fabric = fabric_with_latency(0);
        let base = fabric.endpoint_count();
        {
            let guard = fabric.register_guarded(NodeId(0), "ephemeral");
            assert_eq!(fabric.endpoint_count(), base + 1);
            // The guard is a usable endpoint.
            let a = fabric.register(NodeId(0), "a");
            fabric
                .send(a.address(), guard.address(), Bytes::from_static(b"x"))
                .unwrap();
            assert!(guard
                .receiver()
                .recv_timeout(Duration::from_secs(1))
                .is_ok());
            fabric.unregister(a.address());
        }
        assert_eq!(fabric.endpoint_count(), base);
    }

    #[test]
    fn partition_drops_messages() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric.partition(NodeId(0), NodeId(1));
        assert!(fabric.is_partitioned(NodeId(0), NodeId(1)));
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"lost"))
            .unwrap();
        assert!(b
            .receiver()
            .recv_timeout(Duration::from_millis(50))
            .is_err());
        assert_eq!(fabric.stats.dropped.get(), 1);

        fabric.heal(NodeId(0), NodeId(1));
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"ok"))
            .unwrap();
        assert_eq!(
            &b.receiver()
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .payload[..],
            b"ok"
        );
    }

    #[test]
    fn unknown_addresses_error() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let ghost = NetAddress(999);
        assert!(fabric.send(a.address(), ghost, Bytes::new()).is_err());
        assert!(fabric.send(ghost, a.address(), Bytes::new()).is_err());
    }

    #[test]
    fn unregistered_receiver_drops_in_flight() {
        let fabric = fabric_with_latency(10_000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        fabric.unregister(b.address());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(fabric.stats.delivered.get(), 0);
        assert_eq!(fabric.stats.dropped.get(), 1);
    }

    #[test]
    fn concurrent_senders_all_deliver() {
        let fabric = fabric_with_latency(100);
        let receiver = fabric.register(NodeId(1), "rx");
        let mut handles = Vec::new();
        for t in 0..4 {
            let fabric = fabric.clone();
            let to = receiver.address();
            handles.push(std::thread::spawn(move || {
                let from = fabric.register(NodeId(0), &format!("tx{t}"));
                for _ in 0..250 {
                    fabric
                        .send(from.address(), to, Bytes::from_static(b"m"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while receiver
            .receiver()
            .recv_timeout(Duration::from_secs(5))
            .is_ok()
        {
            got += 1;
            if got == 1000 {
                break;
            }
        }
        assert_eq!(got, 1000);
    }

    #[test]
    fn stats_track_bytes() {
        let fabric = fabric_with_latency(0);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(0), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from(vec![0u8; 128]))
            .unwrap();
        assert_eq!(fabric.stats.bytes.get(), 128);
        assert_eq!(fabric.stats.sent.get(), 1);
    }

    fn fabric_with_faults(faults: FaultPlan) -> Arc<Fabric> {
        Fabric::new(FabricConfig {
            latency: LatencyModel::Zero,
            faults,
            ..FabricConfig::default()
        })
    }

    #[test]
    fn injected_drops_are_counted_and_silent() {
        use crate::fault::{LinkFault, LinkMatch};
        let fabric = fabric_with_faults(FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::any(),
                drop_ppm: 1_000_000,
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        for _ in 0..5 {
            fabric
                .send(a.address(), b.address(), Bytes::from_static(b"x"))
                .unwrap();
        }
        assert!(b
            .receiver()
            .recv_timeout(Duration::from_millis(50))
            .is_err());
        assert_eq!(fabric.stats.injected_drops.get(), 5);
        assert_eq!(fabric.stats.dropped.get(), 5);
        // Same-node traffic is never subject to link faults.
        let c = fabric.register(NodeId(0), "c");
        fabric
            .send(a.address(), c.address(), Bytes::from_static(b"y"))
            .unwrap();
        assert!(c.receiver().recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn injected_duplicates_deliver_twice() {
        use crate::fault::{LinkFault, LinkMatch};
        let fabric = fabric_with_faults(FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::any(),
                duplicate_ppm: 1_000_000,
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        for _ in 0..2 {
            let msg = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(&msg.payload[..], b"x");
        }
        assert_eq!(fabric.stats.injected_dups.get(), 1);
        assert_eq!(fabric.stats.delivered.get(), 2);
    }

    #[test]
    fn gray_link_slows_but_delivers() {
        use crate::fault::{LinkFault, LinkMatch};
        let fabric = fabric_with_faults(FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::link(NodeId(0), NodeId(1)),
                gray_delay: Duration::from_millis(30),
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        let start = Instant::now();
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        let _ = b.receiver().recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(fabric.stats.injected_gray.get(), 1);
        assert_eq!(fabric.stats.dropped.get(), 0);
    }

    #[test]
    fn scheduled_partition_window_drops_then_heals() {
        use crate::fault::{FaultWindow, WindowFault};
        let fabric = fabric_with_faults(FaultPlan {
            schedule: vec![FaultWindow {
                start: Duration::ZERO,
                stop: Duration::from_millis(150),
                fault: WindowFault::Partition(NodeId(0), NodeId(1)),
            }],
            ..FaultPlan::default()
        });
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"lost"))
            .unwrap();
        assert!(b
            .receiver()
            .recv_timeout(Duration::from_millis(20))
            .is_err());
        assert!(fabric.stats.injected_drops.get() >= 1);
        // After the window closes the link heals on its own.
        std::thread::sleep(Duration::from_millis(160));
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"ok"))
            .unwrap();
        assert_eq!(
            &b.receiver()
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .payload[..],
            b"ok"
        );
    }

    #[test]
    fn same_fault_seed_injects_identically() {
        use crate::fault::{LinkFault, LinkMatch};
        let run = |seed: u64| {
            let fabric = fabric_with_faults(FaultPlan {
                seed,
                links: vec![LinkFault {
                    link: LinkMatch::any(),
                    drop_ppm: 400_000,
                    ..LinkFault::default()
                }],
                ..FaultPlan::default()
            });
            let a = fabric.register(NodeId(0), "a");
            let b = fabric.register(NodeId(1), "b");
            for _ in 0..200 {
                fabric
                    .send(a.address(), b.address(), Bytes::from_static(b"m"))
                    .unwrap();
            }
            fabric.stats.injected_drops.get()
        };
        let first = run(0xc4a05);
        assert_eq!(first, run(0xc4a05));
        assert!(first > 0 && first < 200, "drop rate should be partial");
    }

    #[test]
    fn shutdown_on_drop_joins_pump() {
        let fabric = fabric_with_latency(1000);
        let a = fabric.register(NodeId(0), "a");
        let b = fabric.register(NodeId(1), "b");
        fabric
            .send(a.address(), b.address(), Bytes::from_static(b"x"))
            .unwrap();
        drop(a);
        drop(b);
        drop(fabric); // Must not hang.
    }
}
