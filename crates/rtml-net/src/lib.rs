//! A simulated network fabric for in-process "distributed" clusters.
//!
//! The paper's architecture separates per-node components (workers, local
//! scheduler, object store) from cluster-level ones (global scheduler,
//! control plane). Reproducing its latency numbers — ~290 µs end-to-end
//! for a locally-scheduled task vs ~1 ms for a remotely-scheduled one —
//! requires cross-node communication to cost something. This crate
//! provides that cost model:
//!
//! - **Endpoints** register with the fabric under a [`NodeId`]; messages
//!   between endpoints on the *same* node are delivered directly (the
//!   shared-memory fast path), while cross-node messages pay a
//!   configurable [`LatencyModel`] plus a bandwidth term proportional to
//!   payload size.
//! - **Partitions** drop messages between selected node pairs, providing
//!   the failure-injection substrate for fault-tolerance experiments.
//! - **Fault plans** ([`FaultPlan`]) script deterministic chaos on top:
//!   seeded per-link drops, duplication, delay spikes, gray links, and
//!   timed partition windows, with injection counters in
//!   [`FabricStats`] so experiments can assert what was injected.
//! - Delivery ordering is FIFO per (sender, receiver) pair under constant
//!   latency, matching a TCP-like transport.
//!
//! [`NodeId`]: rtml_common::ids::NodeId
//!
//! # Examples
//!
//! ```
//! use rtml_net::{Fabric, FabricConfig, LatencyModel};
//! use rtml_common::ids::NodeId;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let fabric = Fabric::new(FabricConfig {
//!     latency: LatencyModel::Constant(Duration::from_micros(100)),
//!     ..FabricConfig::default()
//! });
//! let a = fabric.register(NodeId(0), "a");
//! let b = fabric.register(NodeId(1), "b");
//! fabric.send(a.address(), b.address(), Bytes::from_static(b"ping")).unwrap();
//! let msg = b.receiver().recv().unwrap();
//! assert_eq!(&msg.payload[..], b"ping");
//! ```

pub mod fabric;
pub mod fault;
pub mod latency;

pub use fabric::{Delivery, Endpoint, Fabric, FabricConfig, FabricStats, NetAddress};
pub use fault::{FaultDecision, FaultPlan, FaultWindow, LinkFault, LinkMatch, WindowFault};
pub use latency::LatencyModel;
