//! Deterministic fault injection: the chaos plane's wire half.
//!
//! A [`FaultPlan`] rides on [`FabricConfig`](crate::FabricConfig) and
//! is consulted once per cross-node send, before the frame touches the
//! egress link. It can drop a message, deliver it twice, add a delay
//! spike, slow a link persistently (a *gray* link — degraded, not
//! dead), or silently partition a pair of nodes for a scheduled
//! window. Every decision is drawn from a dedicated LCG seeded by
//! [`FaultPlan::seed`], separate from the fabric's latency-jitter
//! stream, so (a) two runs with the same seed inject byte-identical
//! fault sequences and (b) a fabric with no plan configured keeps
//! exactly the jitter stream it had before this module existed.
//!
//! Two layers compose:
//!
//! - **Steady-state rules** ([`LinkFault`]): per-link probabilities in
//!   parts-per-million plus a constant gray-link delay, matched by an
//!   optional `(from, to)` pattern where `None` is a wildcard.
//! - **A timed schedule** ([`FaultWindow`]): faults active during
//!   `[start, stop)` measured from fabric creation — transient
//!   partitions, windowed gray links, windowed drop storms. Setting
//!   [`FaultPlan::period`] repeats the schedule, turning a one-shot
//!   script into sustained churn for soak experiments.
//!
//! What was actually injected is counted in
//! [`FabricStats`](crate::FabricStats) (`injected_drops`,
//! `injected_dups`, `injected_delays`, `injected_gray`) so experiments
//! can assert the chaos they asked for really happened.

use std::time::Duration;

use rtml_common::ids::NodeId;

/// Which directed links a rule applies to; `None` is a wildcard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkMatch {
    pub from: Option<NodeId>,
    pub to: Option<NodeId>,
}

impl LinkMatch {
    /// Matches every cross-node link.
    pub fn any() -> Self {
        LinkMatch::default()
    }

    /// Matches every frame leaving `node`.
    pub fn from_node(node: NodeId) -> Self {
        LinkMatch {
            from: Some(node),
            to: None,
        }
    }

    /// Matches every frame arriving at `node`.
    pub fn to_node(node: NodeId) -> Self {
        LinkMatch {
            from: None,
            to: Some(node),
        }
    }

    /// Matches the single directed link `from -> to`.
    pub fn link(from: NodeId, to: NodeId) -> Self {
        LinkMatch {
            from: Some(from),
            to: Some(to),
        }
    }

    pub fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A steady-state per-link fault rule. Probabilities are in parts per
/// million of sends on matching links; `delay_spike` is added only
/// when the spike roll hits, `gray_delay` is added to *every* frame on
/// the link (a slowed-but-alive link).
#[derive(Clone, Debug, Default)]
pub struct LinkFault {
    pub link: LinkMatch,
    pub drop_ppm: u32,
    pub duplicate_ppm: u32,
    pub delay_spike_ppm: u32,
    pub delay_spike: Duration,
    pub gray_delay: Duration,
}

/// What a scheduled window does while active.
#[derive(Clone, Debug)]
pub enum WindowFault {
    /// Silently drop all frames between the two nodes, both
    /// directions — a transient partition.
    Partition(NodeId, NodeId),
    /// Slow matching links by a fixed delay for the window.
    Gray { link: LinkMatch, delay: Duration },
    /// Elevated drop probability on matching links for the window.
    Drop { link: LinkMatch, ppm: u32 },
}

/// A fault active during `[start, stop)`, measured from fabric
/// creation (modulo [`FaultPlan::period`] when one is set).
#[derive(Clone, Debug)]
pub struct FaultWindow {
    pub start: Duration,
    pub stop: Duration,
    pub fault: WindowFault,
}

/// A seeded, scriptable fault schedule for the fabric. The default
/// plan is empty and injects nothing; [`FaultPlan::is_active`] gates
/// all per-send work so a fault-free fabric pays only one branch.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the injection RNG (separate from the latency jitter
    /// stream; same seed, same send sequence => same injections).
    pub seed: u64,
    /// Steady-state per-link rules, all applied cumulatively.
    pub links: Vec<LinkFault>,
    /// Timed windows relative to fabric creation.
    pub schedule: Vec<FaultWindow>,
    /// When set, the schedule repeats with this period — a one-shot
    /// script becomes sustained churn.
    pub period: Option<Duration>,
}

/// The outcome of consulting the plan for one send.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultDecision {
    /// Frame silently dropped (injected drop or scheduled partition).
    pub drop: bool,
    /// Dropped by a scheduled partition window specifically.
    pub partitioned: bool,
    /// Deliver the frame twice.
    pub duplicate: bool,
    /// A delay-spike roll hit; `spike` holds the extra latency.
    pub spiked: bool,
    pub spike: Duration,
    /// Constant gray-link slowdown to add (zero when no gray rule
    /// matches).
    pub gray: Duration,
}

impl FaultDecision {
    /// Total extra latency this decision adds to the delivery time.
    pub fn extra_delay(&self) -> Duration {
        self.spike + self.gray
    }
}

fn hit(roll: u64, ppm: u32) -> bool {
    ppm > 0 && roll % 1_000_000 < ppm as u64
}

impl FaultPlan {
    /// True when the plan can inject anything at all. Checked once per
    /// send so an empty plan costs one branch on the hot path.
    pub fn is_active(&self) -> bool {
        !self.links.is_empty() || !self.schedule.is_empty()
    }

    /// Decide the fate of one frame batch on `from -> to` at time
    /// `elapsed` since fabric creation. `roll` must return a fresh
    /// pseudo-random draw per call; the fabric passes its dedicated
    /// fault LCG so decisions are deterministic per seed.
    pub fn decide(
        &self,
        from: NodeId,
        to: NodeId,
        elapsed: Duration,
        mut roll: impl FnMut() -> u64,
    ) -> FaultDecision {
        let mut decision = FaultDecision::default();
        let t = match self.period {
            Some(period) if !period.is_zero() => {
                Duration::from_nanos((elapsed.as_nanos() % period.as_nanos()) as u64)
            }
            _ => elapsed,
        };

        let mut drop_ppm: u32 = 0;
        let mut duplicate_ppm: u32 = 0;
        let mut spike_ppm: u32 = 0;
        let mut spike = Duration::ZERO;
        for rule in &self.links {
            if !rule.link.matches(from, to) {
                continue;
            }
            drop_ppm = drop_ppm.saturating_add(rule.drop_ppm);
            duplicate_ppm = duplicate_ppm.saturating_add(rule.duplicate_ppm);
            spike_ppm = spike_ppm.saturating_add(rule.delay_spike_ppm);
            spike = spike.max(rule.delay_spike);
            decision.gray += rule.gray_delay;
        }
        for window in &self.schedule {
            if t < window.start || t >= window.stop {
                continue;
            }
            match &window.fault {
                WindowFault::Partition(a, b) => {
                    if (from == *a && to == *b) || (from == *b && to == *a) {
                        decision.partitioned = true;
                        decision.drop = true;
                    }
                }
                WindowFault::Gray { link, delay } => {
                    if link.matches(from, to) {
                        decision.gray += *delay;
                    }
                }
                WindowFault::Drop { link, ppm } => {
                    if link.matches(from, to) {
                        drop_ppm = drop_ppm.saturating_add(*ppm);
                    }
                }
            }
        }
        if decision.partitioned {
            return decision;
        }
        if hit(roll(), drop_ppm) {
            decision.drop = true;
            return decision;
        }
        decision.duplicate = hit(roll(), duplicate_ppm);
        if hit(roll(), spike_ppm) {
            decision.spiked = true;
            decision.spike = spike;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut state = 1u64;
        let d = plan.decide(NodeId(0), NodeId(1), Duration::ZERO, || lcg(&mut state));
        assert!(!d.drop && !d.duplicate && !d.spiked);
        assert_eq!(d.extra_delay(), Duration::ZERO);
        // An inert decide consumes no rolls beyond the ppm checks; the
        // fabric never calls decide at all when is_active() is false.
    }

    #[test]
    fn certain_drop_and_duplicate() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::any(),
                drop_ppm: 1_000_000,
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        };
        let mut state = 9u64;
        let d = plan.decide(NodeId(0), NodeId(1), Duration::ZERO, || lcg(&mut state));
        assert!(d.drop && !d.partitioned);

        let plan = FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::any(),
                duplicate_ppm: 1_000_000,
                delay_spike_ppm: 1_000_000,
                delay_spike: Duration::from_millis(3),
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        };
        let d = plan.decide(NodeId(0), NodeId(1), Duration::ZERO, || lcg(&mut state));
        assert!(!d.drop && d.duplicate && d.spiked);
        assert_eq!(d.extra_delay(), Duration::from_millis(3));
    }

    #[test]
    fn link_match_scopes_rules() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::from_node(NodeId(2)),
                drop_ppm: 1_000_000,
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        };
        let mut state = 3u64;
        assert!(
            plan.decide(NodeId(2), NodeId(0), Duration::ZERO, || lcg(&mut state))
                .drop
        );
        assert!(
            !plan
                .decide(NodeId(0), NodeId(2), Duration::ZERO, || lcg(&mut state))
                .drop
        );
    }

    #[test]
    fn scheduled_partition_is_windowed_and_bidirectional() {
        let plan = FaultPlan {
            schedule: vec![FaultWindow {
                start: Duration::from_millis(10),
                stop: Duration::from_millis(20),
                fault: WindowFault::Partition(NodeId(0), NodeId(1)),
            }],
            ..FaultPlan::default()
        };
        let mut state = 5u64;
        let inside = Duration::from_millis(15);
        let outside = Duration::from_millis(25);
        assert!(
            plan.decide(NodeId(0), NodeId(1), inside, || lcg(&mut state))
                .partitioned
        );
        assert!(
            plan.decide(NodeId(1), NodeId(0), inside, || lcg(&mut state))
                .partitioned
        );
        assert!(
            !plan
                .decide(NodeId(0), NodeId(1), outside, || lcg(&mut state))
                .drop
        );
        assert!(
            !plan
                .decide(NodeId(0), NodeId(2), inside, || lcg(&mut state))
                .drop
        );
    }

    #[test]
    fn period_repeats_the_schedule() {
        let plan = FaultPlan {
            schedule: vec![FaultWindow {
                start: Duration::ZERO,
                stop: Duration::from_millis(10),
                fault: WindowFault::Gray {
                    link: LinkMatch::any(),
                    delay: Duration::from_millis(2),
                },
            }],
            period: Some(Duration::from_millis(100)),
            ..FaultPlan::default()
        };
        let mut state = 7u64;
        // 205ms mod 100ms = 5ms: inside the repeated window.
        let d = plan.decide(NodeId(0), NodeId(1), Duration::from_millis(205), || {
            lcg(&mut state)
        });
        assert_eq!(d.gray, Duration::from_millis(2));
        // 250ms mod 100ms = 50ms: outside.
        let d = plan.decide(NodeId(0), NodeId(1), Duration::from_millis(250), || {
            lcg(&mut state)
        });
        assert_eq!(d.gray, Duration::ZERO);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                link: LinkMatch::any(),
                drop_ppm: 300_000,
                duplicate_ppm: 200_000,
                ..LinkFault::default()
            }],
            ..FaultPlan::default()
        };
        let run = |seed: u64| {
            let mut state = seed;
            (0..256)
                .map(|i| {
                    let d = plan.decide(NodeId(0), NodeId(i % 4 + 1), Duration::ZERO, || {
                        lcg(&mut state)
                    });
                    (d.drop, d.duplicate)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0xc4a05), run(0xc4a05));
        assert_ne!(run(1), run(2), "different seeds should differ somewhere");
    }
}
