//! Failure-matrix tests: the R6 story under adversarial timing.

use std::time::Duration;

use rtml::common::error::Error;
use rtml::prelude::*;

#[test]
fn chain_survives_mid_chain_node_loss() {
    // A dependency chain computed across two nodes; killing the node
    // holding intermediate results forces recursive reconstruction.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::Hybrid { queue_threshold: 0 }, // spread aggressively
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let inc = cluster.register_fn1("inc_chain", |x: i64| Ok(x + 1));
    let driver = cluster.driver();
    let mut fut = driver.submit1(&inc, 0).unwrap();
    for _ in 0..9 {
        fut = driver.submit1(&inc, &fut).unwrap();
    }
    assert_eq!(driver.get(&fut).unwrap(), 10);
    // Now lose node 1 (and whatever intermediates it held).
    cluster.kill_node(NodeId(1)).unwrap();
    // The chain result must still be obtainable: local copy or replay.
    assert_eq!(driver.get(&fut).unwrap(), 10);
    cluster.shutdown();
}

#[test]
fn repeated_worker_kills_do_not_lose_work() {
    let cluster = Cluster::start(ClusterConfig::local(1, 3)).unwrap();
    let slow = cluster.register_fn1("slow_fi", |x: i64| {
        std::thread::sleep(Duration::from_millis(100));
        Ok(x * 2)
    });
    let driver = cluster.driver();
    let futs: Vec<_> = (0..6).map(|i| driver.submit1(&slow, i).unwrap()).collect();
    // Kill two of the three workers while work is in flight.
    std::thread::sleep(Duration::from_millis(30));
    let _ = cluster.kill_worker(WorkerId::new(NodeId(0), 0));
    std::thread::sleep(Duration::from_millis(10));
    let _ = cluster.kill_worker(WorkerId::new(NodeId(0), 1));
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 2
        );
    }
    cluster.shutdown();
}

#[test]
fn kill_all_but_one_node_still_completes() {
    let cluster = Cluster::start(ClusterConfig::local(3, 2)).unwrap();
    let f = cluster.register_fn1("compute_fi", |x: i64| Ok(x * x));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..12).map(|i| driver.submit1(&f, i).unwrap()).collect();
    for fut in &futs {
        driver.get(fut).unwrap();
    }
    cluster.kill_node(NodeId(1)).unwrap();
    cluster.kill_node(NodeId(2)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut).unwrap(), (i * i) as i64);
    }
    cluster.shutdown();
}

#[test]
fn killing_replica_holders_leaves_reads_and_lineage_correct() {
    // A hot task output is replicated onto extra holders; killing a
    // replica holder must leave reads correct (remaining holders serve)
    // and killing every holder must still recover the value through
    // lineage replay — replicas are an optimization, never load-bearing
    // for correctness.
    let config = ClusterConfig {
        nodes: (0..4).map(|_| NodeConfig::cpu_only(2)).collect(),
        spill: SpillMode::NeverSpill, // keep the producer on node 0
        ..ClusterConfig::default()
    }
    .with_replication(ReplicationPolicy {
        enabled: true,
        read_threshold: 4,
        max_replicas: 2,
        sweep_interval: Duration::from_millis(1),
        ..ReplicationPolicy::default()
    });
    let cluster = Cluster::start(config).unwrap();
    let make = cluster.register_fn1("make_hot_fi", |i: u64| Ok(vec![i as u8; 32 * 1024]));
    let driver = cluster.driver();
    let fut = driver.submit1(&make, 7u64).unwrap();
    let expect = vec![7u8; 32 * 1024];
    assert_eq!(driver.get(&fut).unwrap(), expect);

    // Drive remote demand with one-shot reads into a scratch store
    // outside the cluster (a streaming consumer that keeps nothing), so
    // no cluster node becomes a holder before the plane acts and every
    // replica pull seals fresh bytes.
    let services = cluster.services().clone();
    let hot = fut.id();
    let scratch = rtml::store::ObjectStore::new(rtml::store::StoreConfig {
        node: NodeId(99),
        ..rtml::store::StoreConfig::default()
    });
    for _ in 0..2 {
        rtml::store::fetch_object(
            &services.fabric,
            &services.directory,
            &scratch,
            hot,
            &[NodeId(0)],
            Duration::from_secs(5),
        )
        .unwrap();
    }
    // Cross the threshold atomically with a scheduler-style fan-in hint
    // (trickled reads decay per sweep by design; a handful of post-kill
    // reads later in this test must NOT re-trigger the plane and race
    // the teardown).
    cluster
        .node_transfer_stats(NodeId(0))
        .unwrap()
        .record_demand(hot, 4);

    // The plane must place its replicas (marked second-class in the
    // target stores) and commit them to the object table.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let replica_holder = loop {
        let locations = services.objects.get(hot).unwrap().locations;
        let marked = locations.iter().copied().find(|n| {
            *n != NodeId(0)
                && services
                    .store(*n)
                    .is_some_and(|store| store.is_replica(hot))
        });
        if locations.len() >= 3 {
            if let Some(holder) = marked {
                break holder;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replication never happened: {locations:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    };

    // Kill one replica holder: reads keep working off the remaining
    // holder set (retry-across-holders is rank order).
    cluster.kill_node(replica_holder).unwrap();
    let survivors = services.objects.get(hot).unwrap().locations;
    assert!(!survivors.contains(&replica_holder), "kill must deregister");
    if let Some(fresh) = services
        .alive_nodes()
        .into_iter()
        .find(|n| !survivors.contains(n))
    {
        let src = services
            .objects
            .get(hot)
            .unwrap()
            .holders_ranked(hot, fresh)[0];
        let agent = services.fetch_agent(fresh).unwrap();
        let (bytes, _) = agent
            .fetch_many(&[hot], src, Duration::from_secs(5))
            .pop()
            .unwrap()
            .unwrap();
        assert_eq!(
            bytes,
            driver.get_raw(hot, Duration::from_secs(5)).unwrap(),
            "post-kill read served wrong bytes"
        );
    }

    // Lose every holder: node 0's copy is dropped from store and table,
    // the remaining replica nodes die. The value must come back through
    // lineage replay, not any surviving copy.
    for node in services.objects.get(hot).unwrap().locations {
        if node == NodeId(0) {
            services.store(NodeId(0)).unwrap().delete(hot);
            services.objects.remove_location(hot, NodeId(0));
        } else if services.store(node).is_some() {
            cluster.kill_node(node).unwrap();
        }
    }
    let before = cluster.reconstructions();
    assert_eq!(driver.get(&fut).unwrap(), expect);
    assert!(
        cluster.reconstructions() > before,
        "value must have come from lineage replay"
    );
    cluster.shutdown();
}

#[test]
fn stolen_tasks_survive_thief_death_via_lineage() {
    // The crash-consistency story of ownership transfer: a batch of
    // tasks is stolen by node 1 (group-committed as Queued(node 1)
    // before the grant leaves the victim), then node 1 dies with some
    // of them queued, running, or holding freshly-computed results.
    // Every future must still resolve correctly — the kill repair marks
    // the dead node's tasks Lost, and lineage re-executes them.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::NeverSpill, // only stealing can move work
        ..ClusterConfig::default()
    }
    .with_stealing(StealConfig {
        enabled: true,
        min_backlog: 1,
        max_tasks: 8,
        interval: Duration::from_millis(1),
        timeout: Duration::from_millis(50),
        hint_objects: 64,
        ..StealConfig::default()
    });
    let cluster = Cluster::start(config).unwrap();
    let slow = cluster.register_fn1("slow_steal_fi", |x: i64| {
        std::thread::sleep(Duration::from_millis(15));
        Ok(x * 7)
    });
    let driver = cluster.driver();
    let futs = driver.submit_many(&slow, 0..16i64).unwrap();
    // Wait until node 1 has actually stolen part of the burst, then
    // kill it mid-flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stolen = cluster
            .node_sched_stats(NodeId(1))
            .map(|s| s.steal.tasks_stolen.get())
            .unwrap_or(0);
        if stolen > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "burst never got stolen"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    cluster.kill_node(NodeId(1)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 7,
            "future {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn restarted_node_accepts_new_work() {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let f = cluster.register_fn1("echo_fi", |x: i64| Ok(x));
    let driver = cluster.driver();
    let config = cluster.node_config(NodeId(1)).unwrap();
    cluster.kill_node(NodeId(1)).unwrap();
    cluster.restart_node(NodeId(1), config).unwrap();
    // Flood enough work that the restarted node must participate.
    let futs: Vec<_> = (0..40).map(|i| driver.submit1(&f, i).unwrap()).collect();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut).unwrap(), i as i64);
    }
    cluster.shutdown();
}

#[test]
fn double_kill_same_node_errors() {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    cluster.kill_node(NodeId(1)).unwrap();
    assert_eq!(
        cluster.kill_node(NodeId(1)),
        Err(Error::NodeDown(NodeId(1)))
    );
    cluster.shutdown();
}

#[test]
fn restart_alive_node_errors() {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let err = cluster
        .restart_node(NodeId(1), NodeConfig::cpu_only(2))
        .unwrap_err();
    assert!(matches!(err, Error::InvalidArgument(_)));
    cluster.shutdown();
}

#[test]
fn reconstruction_counter_reflects_replays() {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let f = cluster.register_fn1("count_fi", |x: i64| Ok(x + 100));
    let driver = cluster.driver();

    // Pin all results to node 1 by flooding node 0's queue? Simpler:
    // run work, kill node 1, and count that any replays that happened
    // are reported.
    let futs: Vec<_> = (0..10).map(|i| driver.submit1(&f, i).unwrap()).collect();
    for fut in &futs {
        driver.get(fut).unwrap();
    }
    let before = cluster.reconstructions();
    cluster.kill_node(NodeId(1)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut).unwrap(), i as i64 + 100);
    }
    let after = cluster.reconstructions();
    assert!(after >= before);
    cluster.shutdown();
}

#[test]
fn failure_during_nested_fanout_recovers() {
    let cluster = Cluster::start(ClusterConfig::local(2, 3)).unwrap();
    let leaf = cluster.register_fn1("leaf_fi", |x: i64| {
        std::thread::sleep(Duration::from_millis(20));
        Ok(x)
    });
    let fanout = cluster.register_fn1_ctx("fanout_fi", move |ctx, n: i64| {
        let futs: Vec<_> = (0..n).map(|i| ctx.submit1(&leaf, i).unwrap()).collect();
        let mut sum = 0;
        for fut in &futs {
            sum += ctx.get(fut)?;
        }
        Ok(sum)
    });
    let driver = cluster.driver();
    let fut = driver.submit1(&fanout, 10).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // Kill a worker on node 1 that is likely running leaves.
    let _ = cluster.kill_worker(WorkerId::new(NodeId(1), 0));
    assert_eq!(driver.get(&fut).unwrap(), 45);
    cluster.shutdown();
}

#[test]
fn batched_tasks_survive_node_loss_mid_batch() {
    // A whole batch is submitted as one scheduler message and spread
    // over two nodes; one node dies while the batch is in flight. Every
    // future must still resolve to the right value via lineage
    // reconstruction — batched tasks record the same durable specs as
    // single ones, so replay is oblivious to how they were submitted.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::Hybrid { queue_threshold: 0 }, // spread aggressively
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let slow = cluster.register_fn1("slow_batch_fi", |x: i64| {
        std::thread::sleep(Duration::from_millis(15));
        Ok(x * 3)
    });
    let driver = cluster.driver();
    let futs = driver.submit_many(&slow, 0..24i64).unwrap();
    // Let part of the batch land (some running, some queued on node 1),
    // then kill node 1 mid-flight.
    std::thread::sleep(Duration::from_millis(40));
    cluster.kill_node(NodeId(1)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 3,
            "future {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn transient_partition_heals_without_losing_values() {
    // Results spread to node 1, then the 0↔1 link partitions. Fetches
    // fail (and may trigger precautionary replays); once the partition
    // heals every value is delivered intact — no hangs, no corruption.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::Hybrid { queue_threshold: 0 },
        fetch_timeout: Duration::from_millis(200),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).unwrap();
    let f = cluster.register_fn1("part_fi", |x: i64| Ok(x + 7));
    let driver = cluster.driver();

    // Run enough tasks that some results live on node 1.
    let futs: Vec<_> = (0..8).map(|i| driver.submit1(&f, i).unwrap()).collect();
    let (ready, _) = driver.wait(&futs, 8, Duration::from_secs(30));
    assert_eq!(ready.len(), 8);

    let fabric = driver.services().fabric.clone();
    fabric.partition(NodeId(0), NodeId(1));
    let healer = std::thread::spawn({
        let fabric = fabric.clone();
        move || {
            std::thread::sleep(Duration::from_millis(800));
            fabric.heal(NodeId(0), NodeId(1));
        }
    });
    // Gets issued during the partition must resolve (locally replayed
    // values or post-heal fetches) and must be correct.
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 + 7,
            "future {i}"
        );
    }
    healer.join().unwrap();
    cluster.shutdown();
}

#[test]
fn sharded_spill_batch_survives_node_loss_mid_flight() {
    // K = 4 global-scheduler shards arbitrate an aggressively spilled
    // batch across three nodes; one placement target dies while tasks
    // are queued and running on it. Lineage replay must recover every
    // value — sharding the placement plane adds no new loss modes,
    // because durable task specs (not scheduler state) are the
    // recovery source.
    let config = ClusterConfig {
        nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
        spill: SpillMode::Hybrid { queue_threshold: 0 }, // spread aggressively
        ..ClusterConfig::default()
    }
    .with_global_shards(4);
    let cluster = Cluster::start(config).unwrap();
    let slow = cluster.register_fn1("slow_shard_fi", |x: i64| {
        std::thread::sleep(Duration::from_millis(15));
        Ok(x * 5)
    });
    let driver = cluster.driver();
    let futs = driver.submit_many(&slow, 0..24i64).unwrap();
    // Let the shards place part of the batch, then kill a target node
    // mid-flight.
    std::thread::sleep(Duration::from_millis(40));
    let (spills_before, _, _) = cluster.global_stats();
    assert!(spills_before > 0, "batch must actually reach the shards");
    cluster.kill_node(NodeId(2)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 5,
            "future {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn surviving_shards_keep_placing_after_node_loss() {
    // With K = 4 shards sharing a three-node cluster, losing a node
    // must not wedge any shard: every shard sees the NodeDown, drops
    // the dead node from its view, and keeps placing fresh work on the
    // survivors. A fresh wave after the kill spans the whole keyspace,
    // so it exercises every shard's post-failure placement path.
    let config = ClusterConfig {
        nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
        spill: SpillMode::Hybrid { queue_threshold: 0 },
        ..ClusterConfig::default()
    }
    .with_global_shards(4);
    let cluster = Cluster::start(config).unwrap();
    let f = cluster.register_fn1("post_kill_fi", |x: i64| Ok(x - 9));
    let driver = cluster.driver();

    // Warm wave: all shards place onto the full cluster.
    let warm = driver.submit_many(&f, 0..16i64).unwrap();
    for (i, fut) in warm.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 - 9
        );
    }
    cluster.kill_node(NodeId(1)).unwrap();

    // Fresh wave after the loss: enough tasks that the FNV partition
    // touches several shards, all of which must place on survivors.
    let placements_before: Vec<u64> = cluster
        .global_shard_stats()
        .iter()
        .map(|(_, p, _)| *p)
        .collect();
    let futs = driver.submit_many(&f, 100..132i64).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            (100 + i as i64) - 9,
            "future {i} after node loss"
        );
    }
    let placements_after: Vec<u64> = cluster
        .global_shard_stats()
        .iter()
        .map(|(_, p, _)| *p)
        .collect();
    let advanced = placements_before
        .iter()
        .zip(&placements_after)
        .filter(|(b, a)| a > b)
        .count();
    assert!(
        advanced > 1,
        "expected several shards to place after the kill, got {advanced} \
         (before {placements_before:?}, after {placements_after:?})"
    );
    cluster.shutdown();
}

#[test]
fn kill_restart_cycles_do_not_leak_fabric_endpoints() {
    // Each node owns three persistent fabric endpoints (local scheduler,
    // transfer service, fetch agent). A kill must withdraw all of them
    // and a restart must register exactly the same number — across
    // repeated cycles the count returns to baseline, or the fabric's
    // routing table grows without bound under churn.
    let cluster = Cluster::start(ClusterConfig::local(3, 2)).unwrap();
    let f = cluster.register_fn1("leak_fi", |x: i64| Ok(x ^ 0x5a));
    let driver = cluster.driver();
    let fabric = cluster.services().fabric.clone();
    let baseline = fabric.endpoint_count();
    for cycle in 0..3 {
        let config = cluster.node_config(NodeId(2)).unwrap();
        cluster.kill_node(NodeId(2)).unwrap();
        assert!(
            fabric.endpoint_count() < baseline,
            "kill must unregister the node's endpoints (cycle {cycle})"
        );
        cluster.restart_node(NodeId(2), config).unwrap();
        assert_eq!(
            fabric.endpoint_count(),
            baseline,
            "endpoint count must return to baseline after restart (cycle {cycle})"
        );
        // The cycle must leave a working cluster, not just a balanced
        // routing table.
        let futs: Vec<_> = (0..6)
            .map(|i| driver.submit1(&f, cycle * 10 + i).unwrap())
            .collect();
        for (i, fut) in futs.iter().enumerate() {
            assert_eq!(
                driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
                (cycle * 10 + i as i64) ^ 0x5a
            );
        }
    }
    assert_eq!(fabric.endpoint_count(), baseline);
    cluster.shutdown();
}

#[test]
fn steal_request_swallowed_by_partition_rearms_cleanly() {
    // Node 1 sits idle while node 0 holds a backlog, but the 0↔1 link
    // is partitioned: every steal request vanishes on the wire. The
    // thief must time each request out, back off, and keep the loop
    // armed — then finish the backlog normally once the link heals.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::NeverSpill, // only stealing can move work
        ..ClusterConfig::default()
    }
    .with_stealing(StealConfig {
        enabled: true,
        min_backlog: 1,
        max_tasks: 8,
        interval: Duration::from_millis(1),
        timeout: Duration::from_millis(20),
        hint_objects: 64,
        ..StealConfig::default()
    });
    let cluster = Cluster::start(config).unwrap();
    let fabric = cluster.services().fabric.clone();
    fabric.partition(NodeId(0), NodeId(1));

    let slow = cluster.register_fn1("part_steal_fi", |x: i64| {
        std::thread::sleep(Duration::from_millis(10));
        Ok(x * 11)
    });
    let driver = cluster.driver();
    let futs = driver.submit_many(&slow, 0..16i64).unwrap();

    // The thief's requests must be dying to the partition, not wedging
    // the loop: timeouts accumulate while nothing is ever granted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = cluster.node_sched_stats(NodeId(1)).unwrap();
        if stats.steal.timeouts.get() >= 2 {
            assert_eq!(
                stats.steal.tasks_stolen.get(),
                0,
                "nothing can cross a partitioned link"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "steal requests never timed out against the partition"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    fabric.heal(NodeId(0), NodeId(1));
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 11,
            "future {i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn replication_pull_across_healed_partition_completes() {
    // The replication plane decides to copy a hot object onto node 1
    // while the 0↔1 link is partitioned. The pull (with its retries)
    // fails against the dead link; once the link heals, a later sweep's
    // pull must land the replica — the plane degrades, it doesn't quit.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::NeverSpill,
        fetch_timeout: Duration::from_millis(150),
        ..ClusterConfig::default()
    }
    .with_replication(ReplicationPolicy {
        enabled: true,
        read_threshold: 4,
        max_replicas: 1,
        sweep_interval: Duration::from_millis(10),
        ..ReplicationPolicy::default()
    });
    let cluster = Cluster::start(config).unwrap();
    let make = cluster.register_fn1("part_repl_fi", |i: u64| Ok(vec![i as u8; 16 * 1024]));
    let driver = cluster.driver();
    let fut = driver.submit1(&make, 9u64).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), vec![9u8; 16 * 1024]);

    let services = cluster.services().clone();
    let hot = fut.id();
    let fabric = services.fabric.clone();
    fabric.partition(NodeId(0), NodeId(1));
    // Cross the demand threshold: the sweep will pick node 1 as the
    // only possible target and its pulls will die on the partition.
    cluster
        .node_transfer_stats(NodeId(0))
        .unwrap()
        .record_demand(hot, 8);
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        !services
            .objects
            .get(hot)
            .unwrap()
            .locations
            .contains(&NodeId(1)),
        "no replica can cross a partitioned link"
    );

    fabric.heal(NodeId(0), NodeId(1));
    // Keep demand warm so post-heal sweeps still see a hot object
    // (demand decays per sweep by design).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if services
            .objects
            .get(hot)
            .unwrap()
            .locations
            .contains(&NodeId(1))
        {
            break;
        }
        cluster
            .node_transfer_stats(NodeId(0))
            .unwrap()
            .record_demand(hot, 8);
        assert!(
            std::time::Instant::now() < deadline,
            "replica never landed after the partition healed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}

#[test]
fn partitioned_stripe_target_recovers_via_kill_repair() {
    // Driver batches stripe across both nodes while node 1 is cut off
    // from node 0 by a partition. Batches ingested at node 1 (submit
    // routing is in-process) run there, but their results are
    // unreachable; killing the partitioned stripe target must sweep its
    // tasks into Lost and replay them on the survivor, and subsequent
    // stripe batches must fail over to node 0 cleanly.
    let config = ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::NeverSpill,
        fetch_timeout: Duration::from_millis(150),
        ..ClusterConfig::default()
    }
    .with_submit_striping(2);
    let cluster = Cluster::start(config).unwrap();
    let f = cluster.register_fn1("stripe_part_fi", |x: i64| Ok(x * 13));
    let driver = cluster.driver();
    let fabric = cluster.services().fabric.clone();
    fabric.partition(NodeId(0), NodeId(1));

    // Several waves so both stripe positions take batches.
    let mut futs = Vec::new();
    for wave in 0..4i64 {
        futs.extend(driver.submit_many(&f, wave * 8..(wave + 1) * 8).unwrap());
    }
    std::thread::sleep(Duration::from_millis(50));
    // The partitioned stripe target dies; the kill-repair sweep marks
    // its in-flight tasks Lost and lineage replays them on node 0.
    cluster.kill_node(NodeId(1)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 13,
            "future {i}"
        );
    }
    // Post-kill waves must route entirely to the survivor.
    let more = driver.submit_many(&f, 100..116i64).unwrap();
    for (i, fut) in more.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            (100 + i as i64) * 13
        );
    }
    cluster.shutdown();
}
