//! Determinism and replay-idempotence: the properties lineage-based
//! fault tolerance stands on (paper §3.2.1).

use std::time::Duration;

use rtml::prelude::*;
use rtml::workloads::rl::{self, RlConfig, RlFuncs};
use rtml::workloads::rnn::{self, RnnConfig, RnnFuncs};

#[test]
fn identical_clusters_produce_identical_results() {
    // Two fresh clusters, same seeds: bit-identical outputs. This is
    // the cross-run determinism that makes "replay" meaningful.
    let config = RlConfig {
        rollouts: 6,
        frames_per_task: 4,
        frame_cost: Duration::ZERO,
        iterations: 3,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = || {
        let cluster = Cluster::start(ClusterConfig::local(2, 3)).unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        cluster.shutdown();
        (result.checksum, result.total_reward_bits)
    };
    assert_eq!(run(), run());
}

#[test]
fn prefetch_changes_when_bytes_move_never_what_runs() {
    // The same workload with dispatch-time prefetch on vs off must
    // produce bit-identical checksums: prefetch only overlaps transfer
    // with queueing, it never changes ids, placements, or results.
    let config = RlConfig {
        rollouts: 6,
        frames_per_task: 4,
        frame_cost: Duration::ZERO,
        iterations: 3,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = |prefetch: bool| {
        let cluster = Cluster::start(
            ClusterConfig::local(2, 3)
                .with_latency(LatencyModel::Constant(Duration::from_micros(200)))
                .with_prefetch(prefetch),
        )
        .unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        cluster.shutdown();
        (result.checksum, result.total_reward_bits)
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn replication_changes_where_copies_live_never_what_runs() {
    // The same workload with the replication plane fully off vs
    // aggressively on (every remote read makes an object hot) must
    // produce bit-identical checksums: replication adds holders and
    // spreads reads, it never changes ids, values, or results.
    let config = RlConfig {
        rollouts: 6,
        frames_per_task: 4,
        frame_cost: Duration::ZERO,
        iterations: 3,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = |replication: ReplicationPolicy| {
        let cluster = Cluster::start(
            ClusterConfig::local(3, 2)
                .with_latency(LatencyModel::Constant(Duration::from_micros(200)))
                .with_replication(replication),
        )
        .unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        let replicas = cluster.profile().replication.replicas_created;
        cluster.shutdown();
        (result.checksum, result.total_reward_bits, replicas)
    };
    let aggressive = ReplicationPolicy {
        enabled: true,
        read_threshold: 1,
        max_replicas: 2,
        sweep_interval: Duration::from_millis(1),
        ..ReplicationPolicy::default()
    };
    let (on_sum, on_bits, _) = run(aggressive);
    let (off_sum, off_bits, off_replicas) = run(ReplicationPolicy::disabled());
    assert_eq!((on_sum, on_bits), (off_sum, off_bits));
    assert_eq!(off_replicas, 0, "disabled plane must not replicate");
}

#[test]
fn stealing_changes_where_tasks_run_never_what_runs() {
    // The same workload with the steal plane fully off vs aggressively
    // on (every one-deep backlog is stealable) must produce
    // bit-identical checksums: stealing moves ready tasks between
    // nodes, it never changes ids, values, or results. NeverSpill plus
    // single-node submission forces real skew, so the "on" run
    // actually steals.
    let config = RlConfig {
        rollouts: 8,
        frames_per_task: 4,
        frame_cost: Duration::from_millis(2),
        iterations: 3,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = |stealing: StealConfig| {
        let cluster = Cluster::start(
            ClusterConfig {
                nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
                spill: SpillMode::NeverSpill,
                ..ClusterConfig::default()
            }
            .with_latency(LatencyModel::Constant(Duration::from_micros(200)))
            .with_stealing(stealing),
        )
        .unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        let stolen = cluster.profile().steal.tasks_stolen;
        cluster.shutdown();
        (result.checksum, result.total_reward_bits, stolen)
    };
    let aggressive = StealConfig {
        enabled: true,
        min_backlog: 1,
        max_tasks: 8,
        interval: Duration::from_millis(1),
        timeout: Duration::from_millis(50),
        hint_objects: 64,
        ..StealConfig::default()
    };
    let (on_sum, on_bits, on_stolen) = run(aggressive);
    let (off_sum, off_bits, off_stolen) = run(StealConfig::disabled());
    assert_eq!((on_sum, on_bits), (off_sum, off_bits));
    assert_eq!(off_stolen, 0, "disabled plane must not steal");
    assert!(on_stolen > 0, "skewed NeverSpill run must actually steal");
}

#[test]
fn resubmitting_the_same_structure_reuses_results() {
    // Deterministic task IDs mean a re-executed parent's submissions
    // are recognized: the children do not run twice.
    let cluster = Cluster::start(ClusterConfig::local(1, 2)).unwrap();
    let count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let count2 = count.clone();
    let counted = cluster.register_fn1("counted", move |x: i64| {
        count2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(x)
    });
    let driver = cluster.driver();
    let first = driver.submit1(&counted, 5).unwrap();
    assert_eq!(driver.get(&first).unwrap(), 5);
    assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 1);

    // A second driver is a different root: its submission is new work.
    let other_driver = cluster.driver();
    let second = other_driver.submit1(&counted, 5).unwrap();
    assert_ne!(first.id(), second.id());
    assert_eq!(other_driver.get(&second).unwrap(), 5);
    assert_eq!(count.load(std::sync::atomic::Ordering::SeqCst), 2);
    cluster.shutdown();
}

#[test]
fn replay_after_node_loss_is_bit_exact() {
    // Compute on two nodes, destroy one, force replays through get, and
    // compare against an untouched control run.
    let rnn_config = RnnConfig {
        layers: 3,
        timesteps: 6,
        base_cell_cost: Duration::from_micros(300),
        ..RnnConfig::default()
    };
    let control = rnn::run_serial(&rnn_config);

    let cluster = Cluster::start(ClusterConfig {
        nodes: vec![NodeConfig::cpu_only(2), NodeConfig::cpu_only(2)],
        spill: SpillMode::Hybrid { queue_threshold: 0 },
        ..ClusterConfig::default()
    })
    .unwrap();
    let funcs = RnnFuncs::register(&cluster);
    let driver = cluster.driver();
    let before = rnn::run_rtml(&rnn_config, &driver, &funcs).unwrap();
    assert_eq!(before.checksum, control.checksum);

    cluster.kill_node(NodeId(1)).unwrap();
    // Re-running the same grid on the degraded cluster must still agree
    // (fresh driver => fresh task ids => fresh execution).
    let driver2 = cluster.driver();
    let after = rnn::run_rtml(&rnn_config, &driver2, &funcs).unwrap();
    assert_eq!(after.checksum, control.checksum);
    cluster.shutdown();
}

#[test]
fn submit_batch_matches_a_submit1_loop_bit_for_bit() {
    // The batched submission path must produce exactly the task/object
    // IDs — and therefore exactly the values — that the equivalent
    // sequence of single submissions produces. Two identically-seeded
    // clusters, one driven each way.
    let run = |batched: bool| {
        let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
        let square = cluster.register_fn1("square_det", |x: i64| Ok(x * x));
        let driver = cluster.driver();
        let futs: Vec<ObjectRef<i64>> = if batched {
            driver.submit_batch(&square, 0..32i64).unwrap()
        } else {
            (0..32i64)
                .map(|i| driver.submit1(&square, i).unwrap())
                .collect()
        };
        let ids: Vec<_> = futs.iter().map(|f| f.id()).collect();
        let values: Vec<i64> = futs.iter().map(|f| driver.get(f).unwrap()).collect();
        cluster.shutdown();
        (ids, values)
    };
    let (loop_ids, loop_values) = run(false);
    let (batch_ids, batch_values) = run(true);
    assert_eq!(loop_ids, batch_ids, "ids must be bit-identical");
    assert_eq!(loop_values, batch_values);
    assert_eq!(loop_values, (0..32i64).map(|i| i * i).collect::<Vec<_>>());
}

#[test]
fn batch_and_single_submissions_interleave_deterministically() {
    // Mixing the two APIs on one driver advances the same child
    // counter: a batch of N consumes exactly N counters, so every
    // future's id is derivable from its position alone.
    let cluster = Cluster::start(ClusterConfig::local(1, 2)).unwrap();
    let echo = cluster.register_fn1("echo_det", |x: i64| Ok(x));
    let driver = cluster.driver();

    let f1 = driver.submit1(&echo, 1).unwrap();
    let batch = driver.submit_batch(&echo, vec![2, 3]).unwrap();
    let f4 = driver.submit1(&echo, 4).unwrap();

    let root = TaskId::driver_root(driver.id());
    let expect = |counter: u64| root.child(counter).return_object(0);
    assert_eq!(f1.id(), expect(0));
    assert_eq!(batch[0].id(), expect(1));
    assert_eq!(batch[1].id(), expect(2));
    assert_eq!(f4.id(), expect(3));
    assert_eq!(driver.get(&f4).unwrap(), 4);
    assert_eq!(driver.get(&batch[1]).unwrap(), 3);
    cluster.shutdown();
}

#[test]
fn event_log_timeline_is_causally_ordered() {
    // For every finished task: submitted <= queued <= started <= done.
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let f = cluster.register_fn1("ordered", |x: i64| Ok(x));
    let driver = cluster.driver();
    let futs: Vec<_> = (0..20).map(|i| driver.submit1(&f, i).unwrap()).collect();
    for fut in &futs {
        driver.get(fut).unwrap();
    }
    let report = cluster.profile();
    let mut checked = 0;
    for task in &report.tasks {
        if let (Some(submitted), Some(started), Some(finished)) =
            (task.submitted, task.started, task.finished)
        {
            assert!(submitted <= started, "submit after start");
            assert!(started <= finished, "start after finish");
            if let Some(queued) = task.queued {
                assert!(submitted <= queued, "submit after queue");
            }
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} complete timelines");
    cluster.shutdown();
}

#[test]
fn global_sharding_changes_who_places_never_what_runs() {
    // The same spill-heavy workload with K = 1, 2, and 4 global-scheduler
    // shards must produce bit-identical checksums: sharding partitions
    // the placement keyspace (who decides), never values or results.
    // Aggressive spill forces every submission through the global
    // scheduler so the shards actually arbitrate placement.
    let config = RlConfig {
        rollouts: 8,
        frames_per_task: 4,
        frame_cost: Duration::ZERO,
        iterations: 3,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = |shards: usize| {
        let cluster = Cluster::start(
            ClusterConfig {
                nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
                spill: SpillMode::Hybrid { queue_threshold: 0 },
                ..ClusterConfig::default()
            }
            .with_global_shards(shards),
        )
        .unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        let (spills, placements, _) = cluster.global_stats();
        let per_shard = cluster.global_shard_stats();
        cluster.shutdown();
        (
            result.checksum,
            result.total_reward_bits,
            spills,
            placements,
            per_shard,
        )
    };
    let (sum1, bits1, spills1, placements1, shards1) = run(1);
    assert!(
        spills1 > 0,
        "spill-heavy run must reach the global scheduler"
    );
    assert!(placements1 > 0);
    assert_eq!(shards1.len(), 1);
    for k in [2usize, 4] {
        let (sum_k, bits_k, spills_k, placements_k, shards_k) = run(k);
        assert_eq!((sum_k, bits_k), (sum1, bits1), "K={k} changed results");
        assert!(spills_k > 0);
        assert_eq!(shards_k.len(), k);
        // The keyspace partition spreads arbitration: with this many
        // tasks, more than one shard must have placed work.
        let active = shards_k.iter().filter(|(_, p, _)| *p > 0).count();
        assert!(active > 1, "K={k}: only {active} shard(s) placed");
        assert_eq!(
            shards_k.iter().map(|(_, p, _)| *p).sum::<u64>(),
            placements_k,
            "per-shard placements must sum to the total"
        );
    }
}

#[test]
fn submit_striping_changes_who_ingests_never_what_runs() {
    // The same spill-heavy workload with driver-side batch striping off
    // (width 1) vs on (width 3), crossed with global shards K in
    // {1, 4}, must produce bit-identical checksums: striping rotates
    // which local scheduler does the ingest bookkeeping, but ids are
    // producer-embedded and placement ignores the submitter, so what
    // runs — and what it computes — never changes.
    let config = RlConfig {
        rollouts: 6,
        frames_per_task: 4,
        frame_cost: Duration::ZERO,
        iterations: 3,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = |striping: usize, shards: usize| {
        let cluster = Cluster::start(
            ClusterConfig {
                nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
                spill: SpillMode::Hybrid { queue_threshold: 1 },
                ..ClusterConfig::default()
            }
            .with_global_shards(shards)
            .with_submit_striping(striping),
        )
        .unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        cluster.shutdown();
        (result.checksum, result.total_reward_bits)
    };
    let reference = run(1, 1);
    for striping in [1usize, 3] {
        for shards in [1usize, 4] {
            if striping == 1 && shards == 1 {
                continue; // the reference itself
            }
            assert_eq!(
                run(striping, shards),
                reference,
                "striping={striping} K={shards} changed results"
            );
        }
    }
}

#[test]
fn striping_changes_who_ingests_never_where_tasks_land() {
    // Placement-neutrality at the task→node map level, not just the
    // checksum level. Every task drags a 4 MiB dependency resident on
    // node 0 and `AlwaysSpill` routes every submission through the
    // global scheduler, so `LocalityAware` placement glues every task
    // to node 0 with a margin (4 MiB vs at most 24 queued tasks x
    // `QUEUE_PENALTY_BYTES` = 1.5 MiB) that no load-report timing can
    // overcome. A never-sealing gate keeps the tasks parked in
    // `Queued`, so the map is readable at rest. Striping may only move
    // the spill *source* (the ingest node) — and with width 3 it must
    // actually spread it.
    use rtml::common::event::EventKind;
    use rtml::common::ids::DriverId;

    const TASKS: i64 = 24;
    let run = |striping: usize| {
        let cluster = Cluster::start(
            ClusterConfig {
                nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
                spill: SpillMode::AlwaysSpill,
                ..ClusterConfig::default()
            }
            .with_submit_striping(striping),
        )
        .unwrap();
        let gated = cluster.register_fn3("gated_map", |x: i64, _dep: Vec<u8>, _gate: i64| Ok(x));
        let driver = cluster.driver();
        let big = driver.put(&vec![7u8; 4 << 20]).unwrap();
        // A dependency that never seals: the tasks place but never run.
        let never: ObjectRef<i64> = ObjectRef::typed(
            TaskId::driver_root(DriverId::from_index(u64::MAX))
                .child(0)
                .return_object(0),
        );
        let futs: Vec<ObjectRef<i64>> = (0..TASKS)
            .map(|i| driver.submit3(&gated, i, &big, &never).unwrap())
            .collect();

        // Wait until every task holds a post-placement Queued state.
        let tasks: Vec<TaskId> = futs
            .iter()
            .map(|f| f.id().producer_task().unwrap())
            .collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let map = loop {
            let states = driver.services().tasks.get_states_many(&tasks);
            let placed: Vec<Option<NodeId>> = states
                .iter()
                .map(|s| match s {
                    Some(rtml::common::task::TaskState::Queued(node)) => Some(*node),
                    _ => None,
                })
                .collect();
            if placed.iter().all(|p| p.is_some()) {
                break placed.into_iter().map(|p| p.unwrap()).collect::<Vec<_>>();
            }
            assert!(
                std::time::Instant::now() < deadline,
                "placement stalled: {states:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        };
        let spill_sources: std::collections::BTreeSet<u32> = driver
            .services()
            .events
            .read_all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::TaskSpilled { from, .. } => Some(from.0),
                _ => None,
            })
            .collect();
        cluster.shutdown();
        (map, spill_sources)
    };

    let (unstriped_map, unstriped_sources) = run(1);
    let (striped_map, striped_sources) = run(3);
    assert_eq!(
        striped_map, unstriped_map,
        "striping moved a task's placement"
    );
    for (i, node) in striped_map.iter().enumerate() {
        assert_eq!(*node, NodeId(0), "task {i} escaped the locality glue");
    }
    assert_eq!(
        unstriped_sources.len(),
        1,
        "unstriped ingest must funnel through one node: {unstriped_sources:?}"
    );
    assert!(
        striped_sources.len() > 1,
        "striping width 3 never spread ingest: {striped_sources:?}"
    );
}

#[test]
fn determinism_matrix_over_planes_and_shard_counts() {
    // The full safety matrix for the sharded scheduler: {stealing,
    // replication, prefetch} x {on, off} x K in {1, 4} — every
    // combination must produce the same bit-identical result. The
    // planes may change where tasks run and where bytes live; none may
    // change what runs.
    let config = RlConfig {
        rollouts: 6,
        frames_per_task: 3,
        frame_cost: Duration::ZERO,
        iterations: 2,
        policy_kernel_cost: Duration::ZERO,
        ..RlConfig::default()
    };
    let run = |stealing: bool, replication: bool, prefetch: bool, shards: usize| {
        let steal = if stealing {
            StealConfig {
                enabled: true,
                min_backlog: 1,
                max_tasks: 8,
                interval: Duration::from_millis(1),
                timeout: Duration::from_millis(50),
                hint_objects: 64,
                ..StealConfig::default()
            }
        } else {
            StealConfig::disabled()
        };
        let replicate = if replication {
            ReplicationPolicy {
                enabled: true,
                read_threshold: 2,
                sweep_interval: Duration::from_millis(5),
                ..ReplicationPolicy::default()
            }
        } else {
            ReplicationPolicy::disabled()
        };
        let cluster = Cluster::start(
            ClusterConfig {
                nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
                spill: SpillMode::Hybrid { queue_threshold: 1 },
                ..ClusterConfig::default()
            }
            .with_latency(LatencyModel::Constant(Duration::from_micros(100)))
            .with_prefetch(prefetch)
            .with_stealing(steal)
            .with_replication(replicate)
            .with_global_shards(shards),
        )
        .unwrap();
        let funcs = RlFuncs::register(&cluster);
        let driver = cluster.driver();
        let result = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
        cluster.shutdown();
        (result.checksum, result.total_reward_bits)
    };
    let reference = run(false, false, false, 1);
    for stealing in [false, true] {
        for replication in [false, true] {
            for prefetch in [false, true] {
                for shards in [1usize, 4] {
                    if !stealing && !replication && !prefetch && shards == 1 {
                        continue; // the reference itself
                    }
                    let got = run(stealing, replication, prefetch, shards);
                    assert_eq!(
                        got, reference,
                        "matrix cell diverged: stealing={stealing} \
                         replication={replication} prefetch={prefetch} K={shards}"
                    );
                }
            }
        }
    }
}
