//! Crash-consistency tests for append-only spec segments (PR 7).
//!
//! `TaskTable::record_many` group-commits a whole batch of task specs
//! as one immutable segment appended under a single shard lock. That
//! single-append commit point is what these tests pin down:
//!
//! - a concurrent reader can never observe a *torn* batch — it sees
//!   none of a batch's specs or all of them;
//! - losing a node mid-submission (including a striped ingest target
//!   holding staged batches) never loses a committed spec, and lineage
//!   replay still produces every value.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rtml::common::ids::{DriverId, FunctionId, TaskId};
use rtml::common::task::{ArgSpec, TaskSpec, TaskState};
use rtml::kv::{KvStore, TaskTable};
use rtml::prelude::*;
use rtml::sched::SpillMode;

fn spec(root: TaskId, batch: u64, i: u64) -> TaskSpec {
    TaskSpec::simple(
        root.child(batch * 1000 + i),
        FunctionId::from_name("seg_f"),
        vec![ArgSpec::Value(Bytes::from(vec![batch as u8, i as u8]))],
    )
}

/// A reader scanning a batch's ids in commit order must never observe
/// `present` followed by `absent`: the segment append is one atomic
/// publication, so visibility jumps from "none" to "all". A per-entry
/// insert loop (the pre-segment implementation) fails this under the
/// same schedule — the reader can overtake the writer mid-batch.
#[test]
fn record_many_is_all_or_nothing_for_concurrent_readers() {
    const BATCHES: u64 = 64;
    const BATCH: u64 = 16;

    let kv = KvStore::new(4);
    let writer_table = TaskTable::new(kv.clone());
    // The reader uses an *independent* handle over the same kv — its
    // own lazy index, rebuilt from the log, exactly like a recovering
    // process.
    let reader_table = TaskTable::new(kv.clone());
    let root = TaskId::driver_root(DriverId::from_index(40));
    let done = Arc::new(AtomicBool::new(false));

    let writer = std::thread::spawn({
        let done = done.clone();
        move || {
            for b in 0..BATCHES {
                let specs: Vec<TaskSpec> = (0..BATCH).map(|i| spec(root, b, i)).collect();
                writer_table.record_many(&specs, &TaskState::Submitted);
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        }
    });

    let reader = std::thread::spawn({
        let done = done.clone();
        move || {
            let mut torn = 0usize;
            let mut passes = 0usize;
            while !done.load(Ordering::Acquire) || passes == 0 {
                for b in 0..BATCHES {
                    let mut seen_present = false;
                    for i in 0..BATCH {
                        let present = reader_table.get_spec(root.child(b * 1000 + i)).is_some();
                        if seen_present && !present {
                            torn += 1;
                        }
                        seen_present |= present;
                    }
                }
                passes += 1;
            }
            (torn, passes)
        }
    });

    writer.join().unwrap();
    let (torn, passes) = reader.join().unwrap();
    assert_eq!(torn, 0, "observed {torn} torn batches over {passes} passes");

    // After the writer finishes, every committed spec must be readable
    // and bit-identical through a third, completely fresh handle.
    let fresh = TaskTable::new(kv);
    for b in 0..BATCHES {
        for i in 0..BATCH {
            let got = fresh
                .get_spec(root.child(b * 1000 + i))
                .unwrap_or_else(|| panic!("spec ({b}, {i}) lost after commit"));
            assert_eq!(got, spec(root, b, i));
        }
    }
}

/// Striping sends whole submission batches to remote ingest nodes; a
/// stripe target can die holding batches that are *accepted* (staged in
/// its scheduler mailbox) but not yet placed. The specs were group-
/// committed durably by the caller before routing, so the kill repair
/// must recover every task: all specs stay readable and every future
/// resolves to the right value through lineage replay.
#[test]
fn striped_submission_survives_stripe_target_loss() {
    let config = ClusterConfig {
        nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
        spill: SpillMode::NeverSpill, // ingest target keeps its batches
        ..ClusterConfig::default()
    }
    .with_submit_striping(3);
    let cluster = Cluster::start(config).unwrap();
    let f = cluster.register_fn1("seg_mul", |x: i64| Ok(x * 11));
    let driver = cluster.driver();

    // Six batches round-robin over the three nodes: two land on the
    // victim. Kill it immediately so staged batches are still in flight.
    let mut futs = Vec::new();
    for wave in 0..6i64 {
        futs.extend(driver.submit_many(&f, wave * 8..wave * 8 + 8).unwrap());
    }
    cluster.kill_node(NodeId(2)).unwrap();

    // Every spec must still be readable — group commit happened on the
    // driver before any frame was routed, and segments are immutable.
    let tasks = &driver.services().tasks;
    for fut in &futs {
        let task = fut.id().producer_task().expect("driver-submitted task");
        assert!(
            tasks.get_spec(task).is_some(),
            "spec for {task:?} lost after stripe-target kill"
        );
    }

    // And every value must come back (survivors execute or replay).
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 * 11,
            "future {i}"
        );
    }
    cluster.shutdown();
}

/// The same loss window with pipelining disabled: the config knob must
/// not change the durability story, only the overlap.
#[test]
fn serialized_submission_survives_node_loss_too() {
    let config = ClusterConfig {
        nodes: (0..3).map(|_| NodeConfig::cpu_only(2)).collect(),
        spill: SpillMode::NeverSpill,
        ..ClusterConfig::default()
    }
    .with_submit_striping(3)
    .with_pipelined_submission(false);
    let cluster = Cluster::start(config).unwrap();
    let f = cluster.register_fn1("seg_add7", |x: i64| Ok(x + 7));
    let driver = cluster.driver();
    let futs = driver.submit_many(&f, 0..24i64).unwrap();
    cluster.kill_node(NodeId(2)).unwrap();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(
            driver.get_timeout(fut, Duration::from_secs(30)).unwrap(),
            i as i64 + 7,
            "future {i}"
        );
    }
    cluster.shutdown();
}
