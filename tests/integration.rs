//! Cross-crate integration tests: the full stack exercised through the
//! facade, combining workloads, scheduling modes, and the control plane.

use std::time::Duration;

use rtml::baselines::{BspConfig, BspEngine, SerialEngine};
use rtml::prelude::*;
use rtml::workloads::{mcts, rl, rnn, sensors};

#[test]
fn rl_serial_bsp_rtml_same_answer() {
    let config = rl::RlConfig {
        rollouts: 6,
        frames_per_task: 4,
        frame_cost: Duration::from_micros(300),
        iterations: 3,
        policy_kernel_cost: Duration::from_millis(1),
        ..rl::RlConfig::default()
    };
    let serial = rl::run_serial(&config);

    let engine = BspEngine::new(BspConfig {
        workers: 4,
        per_task_overhead: Duration::from_micros(200),
        per_stage_overhead: Duration::from_millis(1),
    });
    let bsp = rl::run_engine(&config, &engine);

    let cluster = Cluster::start(ClusterConfig::local(2, 3)).unwrap();
    let funcs = rl::RlFuncs::register(&cluster);
    let driver = cluster.driver();
    let rtml = rl::run_rtml(&config, &driver, &funcs, false).unwrap();
    cluster.shutdown();

    assert_eq!(serial.checksum, bsp.checksum);
    assert_eq!(serial.checksum, rtml.checksum);
    assert_eq!(serial.total_reward_bits, bsp.total_reward_bits);
    assert_eq!(serial.total_reward_bits, rtml.total_reward_bits);
}

#[test]
fn rnn_all_engines_same_checksum_on_gpu_cluster() {
    let config = rnn::RnnConfig {
        layers: 3,
        timesteps: 6,
        base_cell_cost: Duration::from_micros(500),
        ..rnn::RnnConfig::default()
    };
    let serial = rnn::run_serial(&config);
    let bsp = rnn::run_bsp(&config, &SerialEngine);
    let cluster = Cluster::start(ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(2).with_gpus(1.0),
            NodeConfig::cpu_only(2),
        ],
        ..ClusterConfig::default()
    })
    .unwrap();
    let funcs = rnn::RnnFuncs::register(&cluster);
    let driver = cluster.driver();
    let rtml = rnn::run_rtml(&config, &driver, &funcs).unwrap();
    cluster.shutdown();
    assert_eq!(serial.checksum, bsp.checksum);
    assert_eq!(serial.checksum, rtml.checksum);
}

#[test]
fn sensors_stream_beats_batch_on_makespan() {
    let config = sensors::SensorConfig {
        sensors: 4,
        base_cost: Duration::from_millis(2),
        fuse_cost: Duration::from_micros(200),
        windows: 6,
        ..sensors::SensorConfig::default()
    };
    let bsp = sensors::run_bsp(&config, &SerialEngine);
    let cluster = Cluster::start(ClusterConfig::local(2, 4)).unwrap();
    let funcs = sensors::SensorFuncs::register(&cluster, config.fuse_cost);
    let driver = cluster.driver();
    let streamed = sensors::run_rtml(&config, &driver, &funcs).unwrap();
    cluster.shutdown();
    assert_eq!(bsp.checksum, streamed.checksum);
    // Parallel streaming must finish the whole stream faster than
    // strictly-serial batch processing.
    assert!(
        streamed.wall < bsp.wall,
        "stream {:?} !< batch {:?}",
        streamed.wall,
        bsp.wall
    );
}

#[test]
fn mcts_survives_worker_failure() {
    let cluster = Cluster::start(ClusterConfig::local(2, 3)).unwrap();
    let funcs = mcts::MctsFuncs::register(&cluster);
    let config = mcts::MctsConfig {
        frame_cost: Duration::from_millis(2),
        budget: 24,
        parallelism: 6,
        ..mcts::MctsConfig::default()
    };
    // Kill a worker while the search is running; lineage replay must
    // keep the budget accounting exact.
    let driver = cluster.driver();
    let result = std::thread::scope(|scope| {
        let search = scope.spawn(|| mcts::run_rtml(&config, &driver, &funcs));
        std::thread::sleep(Duration::from_millis(30));
        let _ = cluster.kill_worker(WorkerId::new(NodeId(1), 0));
        search.join().unwrap().unwrap()
    });
    assert_eq!(result.simulations, 24);
    cluster.shutdown();
}

#[test]
fn centralized_vs_hybrid_spill_modes_run_same_workload() {
    for spill in [
        SpillMode::AlwaysSpill,
        SpillMode::NeverSpill,
        SpillMode::Hybrid { queue_threshold: 2 },
    ] {
        let cluster = Cluster::start(ClusterConfig::local(2, 2).with_spill(spill.clone())).unwrap();
        let f = cluster.register_fn1("echo_mode", |x: i64| Ok(x));
        let driver = cluster.driver();
        let futs: Vec<_> = (0..20).map(|i| driver.submit1(&f, i).unwrap()).collect();
        for (i, fut) in futs.iter().enumerate() {
            assert_eq!(driver.get(fut).unwrap(), i as i64, "mode {spill:?}");
        }
        cluster.shutdown();
    }
}

#[test]
fn placement_policies_run_same_workload() {
    for policy in [
        PlacementPolicy::LocalityAware,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::RoundRobin,
        PlacementPolicy::PowerOfTwo,
    ] {
        let mut config = ClusterConfig::local(3, 2).with_spill(SpillMode::AlwaysSpill);
        config.placement = policy;
        let cluster = Cluster::start(config).unwrap();
        let f = cluster.register_fn1("echo_policy", |x: i64| Ok(x * 3));
        let driver = cluster.driver();
        let futs: Vec<_> = (0..15).map(|i| driver.submit1(&f, i).unwrap()).collect();
        for (i, fut) in futs.iter().enumerate() {
            assert_eq!(driver.get(fut).unwrap(), i as i64 * 3, "policy {policy:?}");
        }
        cluster.shutdown();
    }
}

#[test]
fn control_plane_sharding_preserves_semantics() {
    for shards in [1usize, 4, 16] {
        let cluster = Cluster::start(ClusterConfig::local(2, 2).with_kv_shards(shards)).unwrap();
        let f = cluster.register_fn2("mul", |a: i64, b: i64| Ok(a * b));
        let driver = cluster.driver();
        let x = driver.submit2(&f, 6, 7).unwrap();
        let y = driver.submit2(&f, &x, 2i64).unwrap();
        assert_eq!(driver.get(&y).unwrap(), 84, "shards {shards}");
        cluster.shutdown();
    }
}

#[test]
fn batched_submission_runs_end_to_end_under_every_spill_mode() {
    for spill in [
        SpillMode::AlwaysSpill,
        SpillMode::NeverSpill,
        SpillMode::Hybrid { queue_threshold: 2 },
    ] {
        let cluster = Cluster::start(ClusterConfig::local(2, 2).with_spill(spill.clone())).unwrap();
        let f = cluster.register_fn1("echo_batch_mode", |x: i64| Ok(x + 10));
        let driver = cluster.driver();
        let futs = driver.submit_many(&f, 0..20i64).unwrap();
        for (i, fut) in futs.iter().enumerate() {
            assert_eq!(driver.get(fut).unwrap(), i as i64 + 10, "mode {spill:?}");
        }
        cluster.shutdown();
    }
}

#[test]
fn event_log_retention_bounds_memory_and_profiling_survives() {
    // A capped event log must stop growing, report what it dropped, and
    // keep `cluster.profile()` working over the retained window.
    let cluster = Cluster::start(ClusterConfig::local(1, 2).with_event_log_retention(64)).unwrap();
    let f = cluster.register_fn1("noop_ret", |x: u64| Ok(x));
    let driver = cluster.driver();
    let futs = driver.submit_many(&f, 0..50u64).unwrap();
    for fut in &futs {
        driver.get(fut).unwrap();
    }
    let events = driver.services().events.clone();
    assert_eq!(events.retention(), Some(64));
    // The profile still builds and sees recent tasks at the cap.
    let report = cluster.profile();
    assert!(!report.tasks.is_empty());
    // Push far past the cap with single submissions (one record per
    // event): every stream is a ring of at most 64 records, so the
    // total is bounded by streams x cap no matter how many tasks ran.
    for chunk in 0..20u64 {
        let futs: Vec<_> = (0..100u64)
            .map(|i| driver.submit1(&f, chunk * 100 + i).unwrap())
            .collect();
        let (ready, _) = driver.wait(&futs, futs.len(), Duration::from_secs(60));
        assert_eq!(ready.len(), 100);
    }
    assert!(events.dropped_count() > 0, "expected dropped events");
    // Generous bound: (node streams + global + supervisor) x cap.
    assert!(
        events.len() <= 64 * 12,
        "log unbounded: {} events",
        events.len()
    );
    let report = cluster.profile();
    assert!(!report.tasks.is_empty());
    cluster.shutdown();
}

#[test]
fn telemetry_timeseries_is_bounded_and_column_stable() {
    use rtml::prelude::TelemetryConfig;
    let telemetry = TelemetryConfig {
        enabled: true,
        interval: Duration::from_millis(2),
        retention: 16,
        ..TelemetryConfig::default()
    };
    let cluster = Cluster::start(ClusterConfig::local(2, 2).with_telemetry(telemetry)).unwrap();
    let f = cluster.register_fn1("tel_echo", |x: i64| Ok(x));
    let driver = cluster.driver();
    let futs = driver.submit_many(&f, 0..50i64).unwrap();
    for fut in &futs {
        driver.get(fut).unwrap();
    }
    // Let the samplers run well past the retention cap.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let series = cluster.timeseries();
        if series.len() == 2 && series.iter().all(|(_, r)| r.len() >= 16) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "samplers stalled: {:?}",
            series
                .iter()
                .map(|(n, r)| (*n, r.len()))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let series = cluster.timeseries();
    for (node, records) in &series {
        // Bounded ring per node.
        assert!(records.len() <= 16, "{node}: {} records", records.len());
        // Column shape is identical across every record of a stream,
        // timestamps rise, and every registered metric has a value in
        // every sample (non-empty series per metric).
        let names: Vec<&str> = records[0].samples.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"fetch.transfers"), "{names:?}");
        assert!(names.contains(&"steal.attempts"));
        assert!(names.contains(&"fabric.sent"));
        assert!(names.contains(&"kv.locks"));
        assert!(names.contains(&"steal.steal_to_run.p99"));
        for pair in records.windows(2) {
            assert!(pair[0].at_nanos <= pair[1].at_nanos);
            let next: Vec<&str> = pair[1].samples.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, next, "column shape drifted on {node}");
        }
    }
    // The node registries the samplers read are exposed too.
    assert!(cluster
        .node_registry(NodeId(0))
        .is_some_and(|r| !r.is_empty()));
    cluster.shutdown();

    // Disabled: no sampler commits anything.
    let quiet = Cluster::start(ClusterConfig::local(1, 1).without_telemetry()).unwrap();
    let f = quiet.register_fn1("tel_quiet", |x: i64| Ok(x));
    let driver = quiet.driver();
    let fut = driver.submit1(&f, 3i64).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), 3);
    assert!(quiet.timeseries().is_empty());
    quiet.shutdown();
}

#[test]
fn event_log_disabled_still_works() {
    let cluster = Cluster::start(ClusterConfig::local(1, 2).without_event_log()).unwrap();
    let f = cluster.register_fn1("noop", |x: u64| Ok(x));
    let driver = cluster.driver();
    let fut = driver.submit1(&f, 1u64).unwrap();
    assert_eq!(driver.get(&fut).unwrap(), 1);
    // No events recorded.
    assert!(cluster.profile().tasks.is_empty());
    cluster.shutdown();
}

#[test]
fn deeply_nested_dynamic_graph() {
    // A task that recursively spawns children (R3) down to depth 5.
    let cluster = Cluster::start(ClusterConfig::local(2, 4)).unwrap();
    let leaf = cluster.register_fn1("leafd", |x: i64| Ok(x + 1));
    fn register_level(
        cluster: &Cluster,
        level: usize,
        inner: rtml::runtime::Func1<i64, i64>,
    ) -> rtml::runtime::Func1<i64, i64> {
        cluster.register_fn1_ctx(&format!("level{level}"), move |ctx, x: i64| {
            let child = ctx.submit1(&inner, x)?;
            let v = ctx.get(&child)?;
            Ok(v * 2)
        })
    }
    let mut f = leaf;
    for level in 0..5 {
        f = register_level(&cluster, level, f);
    }
    let driver = cluster.driver();
    let fut = driver.submit1(&f, 0).unwrap();
    // ((((0+1)*2)*2)*2)*2)*2 = 32.
    assert_eq!(driver.get(&fut).unwrap(), 32);
    cluster.shutdown();
}

#[test]
fn replicated_control_plane_survives_failover() {
    use bytes::Bytes;
    let kv = rtml::kv::ReplicatedKv::new(4);
    for i in 0..100u64 {
        kv.set(
            Bytes::from(format!("key{i}")),
            Bytes::from(i.to_le_bytes().to_vec()),
        );
    }
    kv.fail_primary();
    for i in 0..100u64 {
        let v = kv.get(format!("key{i}").as_bytes()).unwrap();
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&v);
        assert_eq!(u64::from_le_bytes(arr), i);
    }
}

#[test]
fn wait_pipelining_beats_batching_with_stragglers() {
    let cluster = Cluster::start(ClusterConfig::local(2, 4)).unwrap();
    let funcs = rl::RlFuncs::register(&cluster);
    let driver = cluster.driver();
    let config = rl::RlConfig {
        rollouts: 8,
        frames_per_task: 5,
        frame_cost: Duration::from_millis(1),
        policy_kernel_cost: Duration::from_millis(4),
        gpu_speedup: 1.0,
        straggler_every: 8,
        straggler_factor: 10.0,
        ..rl::RlConfig::default()
    };
    let (batched_value, batched_wall) =
        rl::run_rtml_batched(&config, &driver, &funcs, false).unwrap();
    let (pipelined_value, pipelined_wall) =
        rl::run_rtml_pipelined(&config, &driver, &funcs, false).unwrap();
    cluster.shutdown();
    assert_eq!(batched_value.to_bits(), pipelined_value.to_bits());
    // With one 10x straggler, overlapping scoring with the straggler's
    // tail should win. Allow slack for scheduling noise but require a
    // real improvement.
    assert!(
        pipelined_wall < batched_wall,
        "pipelined {pipelined_wall:?} !< batched {batched_wall:?}"
    );
}
