//! Property-based tests (proptest) on the substrate invariants.

use bytes::Bytes;
use proptest::prelude::*;

use rtml::common::codec::{decode_from_slice, encode_to_bytes};
use rtml::common::ids::FunctionId;
use rtml::common::ids::{DriverId, NodeId, ObjectId, TaskId, UniqueId};
use rtml::common::resources::Resources;
use rtml::common::task::{ArgSpec, TaskSpec, TaskState};
use rtml::kv::{KvStore, TaskTable};
use rtml::sched::SchedWire;
use rtml::store::{ObjectStore, StoreConfig};

fn obj(i: u64) -> ObjectId {
    TaskId::driver_root(DriverId::from_index(9))
        .child(i)
        .return_object(0)
}

proptest! {
    // ---- codec round-trips -----------------------------------------

    #[test]
    fn codec_u64_round_trips(v in any::<u64>()) {
        let bytes = encode_to_bytes(&v);
        prop_assert_eq!(decode_from_slice::<u64>(&bytes).unwrap(), v);
    }

    #[test]
    fn codec_i64_round_trips(v in any::<i64>()) {
        let bytes = encode_to_bytes(&v);
        prop_assert_eq!(decode_from_slice::<i64>(&bytes).unwrap(), v);
    }

    #[test]
    fn codec_f64_round_trips_bitwise(v in any::<f64>()) {
        let bytes = encode_to_bytes(&v);
        let back = decode_from_slice::<f64>(&bytes).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn codec_string_round_trips(v in ".{0,64}") {
        let owned = v.to_string();
        let bytes = encode_to_bytes(&owned);
        prop_assert_eq!(decode_from_slice::<String>(&bytes).unwrap(), owned);
    }

    #[test]
    fn codec_vec_round_trips(v in proptest::collection::vec(any::<u32>(), 0..64)) {
        let bytes = encode_to_bytes(&v);
        prop_assert_eq!(decode_from_slice::<Vec<u32>>(&bytes).unwrap(), v);
    }

    #[test]
    fn codec_nested_round_trips(
        v in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<f32>(), 0..8)),
            0..16,
        )
    ) {
        let bytes = encode_to_bytes(&v);
        let back: Vec<(u64, Vec<f32>)> = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(&v) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.len(), b.1.len());
            for (x, y) in a.1.iter().zip(&b.1) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn codec_option_round_trips(v in proptest::option::of(any::<i32>())) {
        let bytes = encode_to_bytes(&v);
        prop_assert_eq!(decode_from_slice::<Option<i32>>(&bytes).unwrap(), v);
    }

    #[test]
    fn codec_rejects_truncation(v in proptest::collection::vec(any::<u64>(), 1..16)) {
        let bytes = encode_to_bytes(&v);
        // Any strict prefix must fail to decode.
        let cut = bytes.len() / 2;
        if cut < bytes.len() {
            prop_assert!(decode_from_slice::<Vec<u64>>(&bytes[..cut]).is_err());
        }
    }

    // ---- identifier discipline --------------------------------------

    #[test]
    fn distinct_counters_distinct_tasks(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let root = TaskId::driver_root(DriverId::from_index(0));
        prop_assert_ne!(root.child(a), root.child(b));
    }

    #[test]
    fn distinct_returns_distinct_objects(idx in 0u32..1000) {
        let task = TaskId::driver_root(DriverId::from_index(0)).child(0);
        prop_assert_ne!(task.return_object(idx), task.return_object(idx + 1));
    }

    #[test]
    fn id_derivation_is_pure(counter in any::<u64>()) {
        let root = TaskId::driver_root(DriverId::from_index(3));
        prop_assert_eq!(root.child(counter), root.child(counter));
        prop_assert_eq!(
            root.child(counter).return_object(0),
            root.child(counter).return_object(0)
        );
    }

    #[test]
    fn buckets_are_stable_and_in_range(raw in any::<u128>(), shards in 1usize..64) {
        let id = UniqueId::from_u128(raw);
        let b = id.bucket(shards);
        prop_assert!(b < shards);
        prop_assert_eq!(b, id.bucket(shards));
    }

    // ---- resource arithmetic ----------------------------------------

    #[test]
    fn resources_add_sub_inverse(
        c1 in 0.0f64..64.0, g1 in 0.0f64..8.0,
        c2 in 0.0f64..64.0, g2 in 0.0f64..8.0,
    ) {
        let a = Resources::new(c1, g1);
        let b = Resources::new(c2, g2);
        let sum = a.add(&b);
        prop_assert!(sum.fits(&a));
        prop_assert!(sum.fits(&b));
        let back = sum.checked_sub(&b).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn fits_is_antisymmetric_unless_equal(
        c1 in 0.0f64..8.0, c2 in 0.0f64..8.0,
    ) {
        let a = Resources::cpu(c1);
        let b = Resources::cpu(c2);
        if a.fits(&b) && b.fits(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn resources_codec_round_trips(
        c in 0.0f64..128.0, g in 0.0f64..16.0, custom in 0.0f64..4.0,
    ) {
        let r = Resources::new(c, g).with_custom("x", custom);
        let bytes = encode_to_bytes(&r);
        prop_assert_eq!(decode_from_slice::<Resources>(&bytes).unwrap(), r);
    }

    // ---- task specs --------------------------------------------------

    #[test]
    fn task_spec_round_trips(
        n_args in 0usize..6,
        num_returns in 1u32..4,
        attempt in 0u32..3,
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let root = TaskId::driver_root(DriverId::from_index(1));
        let args: Vec<ArgSpec> = (0..n_args)
            .map(|i| {
                if i % 2 == 0 {
                    ArgSpec::Value(Bytes::from(payload.clone()))
                } else {
                    ArgSpec::ObjectRef(root.child(i as u64).return_object(0))
                }
            })
            .collect();
        let spec = TaskSpec {
            task_id: root.child(99),
            function: FunctionId::from_name("f"),
            args,
            num_returns,
            resources: Resources::cpu(1.0),
            submitter_node: NodeId(2),
            attempt,
            actor: None,
        };
        let bytes = encode_to_bytes(&spec);
        prop_assert_eq!(decode_from_slice::<TaskSpec>(&bytes).unwrap(), spec);
    }

    // ---- batch wire messages -----------------------------------------

    #[test]
    fn spec_batches_round_trip_on_the_wire(
        n_specs in 0usize..24,
        n_args in 0usize..4,
        hops in 0u32..9,
        payload in proptest::collection::vec(any::<u8>(), 0..16),
        as_place in any::<bool>(),
    ) {
        let root = TaskId::driver_root(DriverId::from_index(2));
        let specs: Vec<TaskSpec> = (0..n_specs)
            .map(|i| {
                let args: Vec<ArgSpec> = (0..n_args)
                    .map(|j| {
                        if j % 2 == 0 {
                            ArgSpec::Value(Bytes::from(payload.clone()))
                        } else {
                            ArgSpec::ObjectRef(root.child(j as u64).return_object(0))
                        }
                    })
                    .collect();
                TaskSpec::simple(root.child(i as u64), FunctionId::from_name("f"), args)
            })
            .collect();
        let msg = if as_place {
            SchedWire::PlaceBatch { specs, hops }
        } else {
            SchedWire::SpillBatch(specs)
        };
        let bytes = encode_to_bytes(&msg);
        prop_assert_eq!(decode_from_slice::<SchedWire>(&bytes).unwrap(), msg);
    }

    #[test]
    fn batch_wire_rejects_truncation(n_specs in 1usize..8) {
        let root = TaskId::driver_root(DriverId::from_index(2));
        let specs: Vec<TaskSpec> = (0..n_specs)
            .map(|i| TaskSpec::simple(root.child(i as u64), FunctionId::from_name("f"), vec![]))
            .collect();
        let bytes = encode_to_bytes(&SchedWire::SpillBatch(specs));
        // Any strict prefix must fail to decode.
        prop_assert!(decode_from_slice::<SchedWire>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn task_state_round_trips(tag in 0u8..7) {
        let state = match tag {
            0 => TaskState::Submitted,
            1 => TaskState::Queued(NodeId(3)),
            2 => TaskState::Spilled,
            3 => TaskState::Running(rtml::common::ids::WorkerId::new(NodeId(1), 2)),
            4 => TaskState::Finished,
            5 => TaskState::Failed("msg".into()),
            _ => TaskState::Lost,
        };
        let bytes = encode_to_bytes(&state);
        prop_assert_eq!(decode_from_slice::<TaskState>(&bytes).unwrap(), state);
    }

    // ---- KV store ----------------------------------------------------

    #[test]
    fn kv_last_write_wins(
        writes in proptest::collection::vec((0u8..16, any::<u64>()), 1..64),
        shards in 1usize..8,
    ) {
        let kv = KvStore::new(shards);
        let mut expected = std::collections::HashMap::new();
        for (key, value) in &writes {
            let k = Bytes::from(vec![*key]);
            kv.set(k.clone(), Bytes::from(value.to_le_bytes().to_vec()));
            expected.insert(*key, *value);
        }
        for (key, value) in expected {
            let got = kv.get(&[key]).unwrap();
            let mut arr = [0u8; 8];
            arr.copy_from_slice(&got);
            prop_assert_eq!(u64::from_le_bytes(arr), value);
        }
    }

    #[test]
    fn kv_log_preserves_order(records in proptest::collection::vec(any::<u32>(), 0..64)) {
        let kv = KvStore::new(4);
        let key = Bytes::from_static(b"log");
        for r in &records {
            kv.append(key.clone(), Bytes::from(r.to_le_bytes().to_vec()));
        }
        let read: Vec<u32> = kv
            .read_log(&key)
            .iter()
            .map(|b| {
                let mut arr = [0u8; 4];
                arr.copy_from_slice(b);
                u32::from_le_bytes(arr)
            })
            .collect();
        prop_assert_eq!(read, records);
    }

    // ---- object store -------------------------------------------------

    #[test]
    fn store_never_exceeds_capacity(
        sizes in proptest::collection::vec(1usize..64, 1..32),
        capacity in 64u64..256,
    ) {
        let store = ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: capacity,
            ..StoreConfig::default()
        });
        for (i, size) in sizes.iter().enumerate() {
            let _ = store.put(obj(i as u64), Bytes::from(vec![0u8; *size]));
            prop_assert!(store.used_bytes() <= capacity,
                "used {} > cap {}", store.used_bytes(), capacity);
        }
    }

    #[test]
    fn store_get_returns_exact_bytes(
        entries in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..16),
    ) {
        let store = ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        });
        for (i, data) in entries.iter().enumerate() {
            store.put(obj(i as u64), Bytes::from(data.clone())).unwrap();
        }
        for (i, data) in entries.iter().enumerate() {
            prop_assert_eq!(&store.get(obj(i as u64)).unwrap()[..], &data[..]);
        }
    }

    #[test]
    fn store_accounting_balances_after_deletes(
        sizes in proptest::collection::vec(1usize..128, 1..16),
    ) {
        let store = ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        });
        for (i, size) in sizes.iter().enumerate() {
            store.put(obj(i as u64), Bytes::from(vec![1u8; *size])).unwrap();
        }
        for i in 0..sizes.len() {
            store.delete(obj(i as u64));
        }
        prop_assert_eq!(store.used_bytes(), 0);
        prop_assert_eq!(store.len(), 0);
    }

    // ---- rendezvous holder choice ------------------------------------

    #[test]
    fn rendezvous_rank_is_a_stable_permutation(
        raw_holders in proptest::collection::vec(0u32..32, 1..8),
        reader in 32u64..64,
    ) {
        use rtml::common::ids::rendezvous_rank;
        let set: std::collections::BTreeSet<u32> = raw_holders.into_iter().collect();
        let holders: Vec<NodeId> = set.into_iter().map(NodeId).collect();
        let ranked = rendezvous_rank(obj(1), reader, holders.iter().copied());
        // Stable: a pure function of (object, salt, set).
        prop_assert_eq!(
            ranked.clone(),
            rendezvous_rank(obj(1), reader, holders.iter().copied())
        );
        // Input order must not matter.
        prop_assert_eq!(
            ranked.clone(),
            rendezvous_rank(obj(1), reader, holders.iter().rev().copied())
        );
        // It is a permutation of the input set.
        let mut sorted_rank = ranked.clone();
        sorted_rank.sort();
        prop_assert_eq!(sorted_rank, holders);
    }

    #[test]
    fn rendezvous_rank_is_consistent_under_holder_loss(
        raw_holders in proptest::collection::vec(0u32..32, 2..8),
        reader in 32u64..64,
        victim_idx in 0usize..8,
    ) {
        // The rendezvous property: removing one holder (eviction, node
        // kill) leaves the relative order of the survivors unchanged —
        // readers fail over without reshuffling the whole ranking.
        use rtml::common::ids::rendezvous_rank;
        let set: std::collections::BTreeSet<u32> = raw_holders.into_iter().collect();
        let holders: Vec<NodeId> = set.into_iter().map(NodeId).collect();
        let victim = holders[victim_idx % holders.len()];
        let full = rendezvous_rank(obj(2), reader, holders.iter().copied());
        let without = rendezvous_rank(
            obj(2),
            reader,
            holders.iter().copied().filter(|n| *n != victim),
        );
        let full_minus: Vec<NodeId> =
            full.into_iter().filter(|n| *n != victim).collect();
        prop_assert_eq!(full_minus, without);
    }

    #[test]
    fn rendezvous_choice_is_uniformish_across_readers(holder_count in 2u32..8) {
        // 256 distinct readers over a fixed holder set: every holder is
        // picked by someone, and no holder dominates — the load-spread
        // property K readers of one hot object rely on.
        use rtml::common::ids::rendezvous_rank;
        let holders: Vec<NodeId> = (0..holder_count).map(NodeId).collect();
        let mut counts = std::collections::HashMap::new();
        for reader in 100u64..356 {
            let top = rendezvous_rank(obj(3), reader, holders.iter().copied())[0];
            *counts.entry(top).or_insert(0u32) += 1;
        }
        prop_assert!(counts.len() as u32 == holder_count, "every holder chosen");
        let max = counts.values().copied().max().unwrap();
        prop_assert!(
            max <= 256 * 3 / 4,
            "one holder took {max}/256 readers across {holder_count} holders"
        );
    }

    // ---- steal plane -------------------------------------------------

    #[test]
    fn steal_grant_preserves_the_ready_multiset(
        n_tasks in 0usize..24,
        capacity in 0.0f64..16.0,
        max_tasks in 0usize..12,
        scores in proptest::collection::vec(0u64..1000, 24..25),
        demands in proptest::collection::vec(1u64..4, 24..25),
    ) {
        // The invariant lineage correctness stands on: a steal grant
        // partitions the victim's ready queue — thief ∪ victim == the
        // original multiset, no task duplicated, none dropped.
        use rtml::sched::plan_steal_grant;
        let root = TaskId::driver_root(DriverId::from_index(7));
        let ready: Vec<TaskSpec> = (0..n_tasks)
            .map(|i| {
                let mut spec =
                    TaskSpec::simple(root.child(i as u64), FunctionId::from_name("f"), vec![]);
                spec.resources = Resources::cpu(demands[i] as f64);
                spec
            })
            .collect();
        let candidates: Vec<(Resources, u64)> = ready
            .iter()
            .enumerate()
            .map(|(i, spec)| (spec.resources.clone(), scores[i]))
            .collect();
        let capacity = Resources::cpu(capacity);
        let picks = plan_steal_grant(&candidates, &capacity, max_tasks);

        // No duplicate positions, quota respected, every pick in range
        // and individually feasible for the thief.
        let distinct: std::collections::HashSet<usize> = picks.iter().copied().collect();
        prop_assert_eq!(distinct.len(), picks.len());
        prop_assert!(picks.len() <= n_tasks / 2);
        prop_assert!(picks.len() <= max_tasks);
        for &idx in &picks {
            prop_assert!(idx < n_tasks);
            prop_assert!(capacity.fits(&ready[idx].resources));
        }

        // Extract exactly like the scheduler (descending removal from
        // the deque), then check the partition.
        let mut remaining: std::collections::VecDeque<TaskSpec> = ready.iter().cloned().collect();
        let mut by_index = picks.clone();
        by_index.sort_unstable_by(|a, b| b.cmp(a));
        let mut granted: Vec<TaskSpec> = Vec::new();
        for idx in by_index {
            granted.push(remaining.remove(idx).unwrap());
        }
        prop_assert_eq!(granted.len() + remaining.len(), n_tasks);
        let mut union: Vec<TaskId> = granted
            .iter()
            .chain(remaining.iter())
            .map(|s| s.task_id)
            .collect();
        union.sort();
        let mut original: Vec<TaskId> = ready.iter().map(|s| s.task_id).collect();
        original.sort();
        // A failing equality here means the grant lost or duplicated a
        // task.
        prop_assert_eq!(union, original);
    }

    // ---- transfer plane ----------------------------------------------

    #[test]
    fn fetch_many_single_flights_duplicates(
        picks in proptest::collection::vec(0u64..6, 1..24),
    ) {
        use rtml::net::{Fabric, FabricConfig};
        use rtml::store::{FetchAgent, TransferDirectory, TransferService};
        use std::collections::BTreeSet;
        use std::sync::Arc;
        use std::time::Duration;

        let fabric = Fabric::new(FabricConfig::default());
        let directory = TransferDirectory::new();
        let src = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(0),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let dst = Arc::new(ObjectStore::new(StoreConfig {
            node: NodeId(1),
            capacity_bytes: 1 << 20,
            ..StoreConfig::default()
        }));
        let _src_svc = TransferService::spawn(fabric.clone(), src.clone(), &directory);
        let _dst_svc = TransferService::spawn(fabric.clone(), dst.clone(), &directory);
        let agent = FetchAgent::spawn(fabric.clone(), dst.clone(), directory.clone());

        let distinct: BTreeSet<u64> = picks.iter().copied().collect();
        for &d in &distinct {
            src.put(obj(d), Bytes::from(vec![d as u8; d as usize + 1])).unwrap();
        }
        let ids: Vec<ObjectId> = picks.iter().map(|&p| obj(p)).collect();
        let results = agent.fetch_many(&ids, NodeId(0), Duration::from_secs(5));
        for (&pick, result) in picks.iter().zip(&results) {
            let (data, _) = result.as_ref().unwrap();
            prop_assert_eq!(data.len(), pick as usize + 1);
        }
        // A get_many of K objects with duplicates performs at most one
        // in-flight transfer per distinct object — exactly one here,
        // since none were local beforehand.
        prop_assert_eq!(agent.stats().transfers.get() as usize, distinct.len());
        prop_assert_eq!(
            agent.stats().duplicates_suppressed.get() as usize,
            picks.len() - distinct.len()
        );
    }
}

// Deterministic-work purity, outside proptest for clarity.
#[test]
fn deterministic_work_is_a_pure_function() {
    use rtml::common::time::deterministic_work;
    for seed in 0..64u64 {
        assert_eq!(deterministic_work(seed, 100), deterministic_work(seed, 100));
    }
}

// ---- hot-path collections (PR 6) -----------------------------------

proptest! {
    /// `FixedReverseHeap` is exactly `sort(); truncate(k)` of its input:
    /// the k smallest items, ascending, for any input and any capacity.
    #[test]
    fn fixed_reverse_heap_matches_sort_truncate_oracle(
        items in proptest::collection::vec(any::<u32>(), 0..64),
        k in 0usize..12,
    ) {
        use rtml::common::collections::FixedReverseHeap;
        let mut heap = FixedReverseHeap::new(k);
        for &item in &items {
            heap.push(item);
        }
        let mut oracle = items.clone();
        oracle.sort_unstable();
        oracle.truncate(k);
        prop_assert_eq!(heap.len(), oracle.len());
        prop_assert_eq!(heap.into_sorted_vec(), oracle);
    }

    /// `FastMap` is a drop-in map: after an arbitrary interleaving of
    /// inserts and removes it holds exactly what `std::collections::HashMap`
    /// holds, and its contents are insertion-order independent (the same
    /// final state is reached from any permutation of distinct inserts).
    #[test]
    fn fast_map_is_a_drop_in_map(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<bool>()), 0..128),
    ) {
        use rtml::common::collections::FastMap;
        use std::collections::HashMap;
        let mut fast: FastMap<u8, u16> = FastMap::default();
        let mut model: HashMap<u8, u16> = HashMap::new();
        for &(key, value, insert) in &ops {
            if insert {
                prop_assert_eq!(fast.insert(key, value), model.insert(key, value));
            } else {
                prop_assert_eq!(fast.remove(&key), model.remove(&key));
            }
            prop_assert_eq!(fast.get(&key), model.get(&key));
        }
        prop_assert_eq!(fast.len(), model.len());
        let mut got: Vec<(u8, u16)> = fast.iter().map(|(k, v)| (*k, *v)).collect();
        let mut want: Vec<(u8, u16)> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Building a `FastMap` from any permutation of the same distinct
    /// entries yields the same map — consumers may rely on contents,
    /// never on iteration order.
    #[test]
    fn fast_map_contents_are_insertion_order_independent(
        raw in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..32),
        seed in any::<u64>(),
    ) {
        use rtml::common::collections::FastMap;
        // Dedup keys (last write wins, like map insertion) so both
        // permutations describe the same final contents.
        let entries: std::collections::HashMap<u32, u32> = raw.into_iter().collect();
        let forward: Vec<(u32, u32)> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        // A deterministic shuffle of the same entries.
        let mut shuffled = forward.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let a: FastMap<u32, u32> = forward.into_iter().collect();
        let b: FastMap<u32, u32> = shuffled.into_iter().collect();
        prop_assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            prop_assert_eq!(b.get(k), Some(v));
        }
    }

    // ---- spec segments (PR 7) --------------------------------------

    /// Segment-committed specs (lazy per-id index over the append-only
    /// log) are indistinguishable from eagerly point-written specs: for
    /// any batching of any spec population, `get_spec` through the lazy
    /// path returns bit-identical encodings to the eager path — from
    /// the writing handle *and* from a fresh handle that must rebuild
    /// its index from the log (the recovery scan).
    #[test]
    fn segment_lazy_index_is_bit_identical_to_eager_writes(
        batch_sizes in proptest::collection::vec(1usize..12, 1..6),
        payload in proptest::collection::vec(any::<u8>(), 0..24),
        num_returns in 1u32..4,
    ) {
        use rtml::common::task::TaskState;
        let kv_lazy = KvStore::new(4);
        let kv_eager = KvStore::new(4);
        let lazy = TaskTable::new(kv_lazy.clone());
        let eager = TaskTable::new(kv_eager);
        let root = TaskId::driver_root(DriverId::from_index(41));
        let mut counter = 0u64;
        let mut all: Vec<TaskSpec> = Vec::new();
        for n in batch_sizes {
            let specs: Vec<TaskSpec> = (0..n)
                .map(|_| {
                    counter += 1;
                    let mut spec = TaskSpec::simple(
                        root.child(counter),
                        FunctionId::from_name("seg_prop"),
                        vec![
                            ArgSpec::Value(Bytes::from(payload.clone())),
                            ArgSpec::ObjectRef(root.child(counter).return_object(0)),
                        ],
                    );
                    spec.num_returns = num_returns;
                    spec
                })
                .collect();
            // Lazy: one segment per batch. Eager: one point key per spec.
            lazy.record_many(&specs, &TaskState::Submitted);
            for spec in &specs {
                eager.put_spec(spec);
            }
            all.extend(specs);
        }
        for spec in &all {
            let a = lazy.get_spec(spec.task_id).unwrap();
            let b = eager.get_spec(spec.task_id).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(encode_to_bytes(&a), encode_to_bytes(spec));
        }
        // A fresh handle over the same kv sees the same bytes: the index
        // is derived state, the log is the truth.
        let fresh = TaskTable::new(kv_lazy);
        for spec in &all {
            prop_assert_eq!(
                encode_to_bytes(&fresh.get_spec(spec.task_id).unwrap()),
                encode_to_bytes(spec)
            );
        }
    }

    // ---- metrics folding (PR 9) ------------------------------------

    /// `Histogram::merge_snapshot` is order-independent and lossless:
    /// partition any sample population into per-node shards, fold the
    /// shard snapshots into one histogram in any order, and the result
    /// is indistinguishable (count, sum, max, every bucket) from
    /// recording all samples into a single histogram directly.
    #[test]
    fn histogram_merge_is_order_independent_and_lossless(
        samples in proptest::collection::vec((any::<u64>(), 0usize..4), 0..256),
    ) {
        use rtml::common::metrics::Histogram;
        let reference = Histogram::new();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for &(value, shard) in &samples {
            reference.record(value);
            shards[shard].record(value);
        }
        let forward = Histogram::new();
        for shard in &shards {
            forward.merge_snapshot(&shard.snapshot());
        }
        let reverse = Histogram::new();
        for shard in shards.iter().rev() {
            reverse.merge_snapshot(&shard.snapshot());
        }
        // Snapshot equality is structural: count, sum, max, and every
        // bucket — a pass means the fold lost nothing, anywhere.
        prop_assert!(forward.snapshot() == reference.snapshot());
        prop_assert!(reverse.snapshot() == reference.snapshot());
        prop_assert_eq!(forward.snapshot().p99(), reference.snapshot().p99());
    }

    /// Registry sample shape (names and order) is a pure function of the
    /// registered *set*: any registration order yields the same columns,
    /// and the shape survives sampling concurrent with recording.
    #[test]
    fn registry_sample_shape_is_registration_order_independent(
        raw_names in proptest::collection::vec("[a-z]{1,8}(\\.[a-z]{1,8}){0,2}", 1..12),
        values in proptest::collection::vec(any::<u64>(), 12..13),
        seed in any::<u64>(),
    ) {
        use rtml::common::metrics::{Histogram, MetricsRegistry};
        use std::sync::Arc;
        let names: Vec<String> = {
            let set: std::collections::BTreeSet<String> = raw_names.into_iter().collect();
            set.into_iter().collect()
        };
        // A deterministic shuffle of the same registrations.
        let mut shuffled = names.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let register = |reg: &MetricsRegistry, order: &[String]| {
            for name in order {
                // Every third registration is a histogram, to exercise
                // column flattening; values are a pure function of the
                // name so both registries read identically.
                let idx = names.iter().position(|n| n == name).unwrap();
                if idx % 3 == 2 {
                    let h = Arc::new(Histogram::new());
                    h.record(values[idx % values.len()].max(1));
                    reg.register_histogram(name, move || h.snapshot());
                } else {
                    let v = values[idx % values.len()];
                    reg.register_value(name, move || v);
                }
            }
        };
        register(&a, &names);
        register(&b, &shuffled);
        prop_assert_eq!(a.sample(), b.sample());
        prop_assert_eq!(a.sample_names(), b.sample_names());
        // Shape is stable while a writer records concurrently.
        let live = Arc::new(Histogram::new());
        let reg = MetricsRegistry::new();
        {
            let live = live.clone();
            reg.register_histogram("live", move || live.snapshot());
        }
        let expected = reg.sample_names();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let live = live.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    live.record(7);
                }
            })
        };
        for _ in 0..16 {
            prop_assert_eq!(reg.sample_names(), expected.clone());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    // ---- sharded global scheduler (PR 6) ---------------------------

    /// FNV shard routing partitions the task keyspace: for every shard
    /// count K, each task id is owned by exactly one shard, the owner is
    /// in range, and the assignment is a pure function of the id.
    #[test]
    fn shard_routing_partitions_the_keyspace(
        indices in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let root = TaskId::driver_root(DriverId::from_index(3));
        for k in [1usize, 2, 4, 8] {
            for &i in &indices {
                let task = root.child(i);
                let owner = task.bucket(k);
                prop_assert!(owner < k, "owner {owner} out of range for K={k}");
                // Exactly-one ownership: every other shard disowns it.
                let owners = (0..k).filter(|&s| task.bucket(k) == s).count();
                prop_assert_eq!(owners, 1);
                // Purity: re-deriving the id re-derives the owner.
                prop_assert_eq!(root.child(i).bucket(k), owner);
            }
        }
    }
}

// ---- sharded-vs-single placement equivalence (PR 6) ----------------

/// Spins up a K-shard global scheduler over `nodes` fake local
/// schedulers (each announced with a fixed queue depth and identical
/// `at_nanos`, so every run starts from the same frozen load view),
/// spills each group in `groups` as one `SpillBatch` — barriering on
/// total placements between groups so the cross-shard digest plane
/// advances in lockstep with the single scheduler's placed-since
/// counters — and returns the task → node placement map.
fn global_placements(
    shards: usize,
    nodes: &[(u32, u32)],
    groups: &[Vec<u64>],
) -> std::collections::BTreeMap<TaskId, NodeId> {
    use rtml::kv::{EventLog, LoadDigestTable, ObjectTable};
    use rtml::net::{Fabric, FabricConfig};
    use rtml::sched::{GlobalScheduler, GlobalSchedulerConfig, LoadReport, PlacementPolicy};
    use std::time::{Duration, Instant};

    let fabric = Fabric::new(FabricConfig::default());
    let kv = KvStore::new(2);
    let mut handle = GlobalScheduler::spawn(
        GlobalSchedulerConfig {
            host_node: NodeId(0),
            policy: PlacementPolicy::LeastLoaded,
            seed: 7,
            shards,
        },
        fabric.clone(),
        ObjectTable::new(kv.clone()),
        EventLog::new(kv.clone()),
        LoadDigestTable::new(kv),
    );
    let routes = handle.routes();
    let endpoints: Vec<_> = nodes
        .iter()
        .map(|&(node, queue)| {
            let endpoint = fabric.register(NodeId(node), "fake-local");
            for target in routes.all() {
                let up = SchedWire::NodeUp {
                    node: NodeId(node),
                    sched_address: endpoint.address().as_u64(),
                };
                fabric
                    .send(endpoint.address(), *target, encode_to_bytes(&up))
                    .unwrap();
                let load = SchedWire::Load(LoadReport {
                    node: NodeId(node),
                    sched_address: endpoint.address().as_u64(),
                    ready: queue,
                    waiting: 0,
                    running: 0,
                    idle_workers: 1,
                    available: Resources::cpu(4.0),
                    total: Resources::cpu(4.0),
                    at_nanos: 0,
                });
                fabric
                    .send(endpoint.address(), *target, encode_to_bytes(&load))
                    .unwrap();
            }
            endpoint
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.nodes_known_min() < nodes.len() {
        assert!(Instant::now() < deadline, "shard formation stalled");
        std::thread::yield_now();
    }

    // Each group is one SpillBatch routed to its owning shard (every
    // task in a group shares one owner under the sharded run's K; the
    // K=1 reference routes everything to shard 0). Placement within a
    // batch is a pure function of (spec, view); between batches the
    // digest plane folds exactly the placements the single scheduler's
    // placed-since counters fold, so the two runs stay in lockstep.
    let root = TaskId::driver_root(DriverId::from_index(0));
    let mut placed = std::collections::BTreeMap::new();
    let mut sent = 0u64;
    for group in groups {
        if group.is_empty() {
            continue;
        }
        let batch: Vec<TaskSpec> = group
            .iter()
            .map(|&i| TaskSpec::simple(root.child(i), FunctionId::from_name("f"), vec![]))
            .collect();
        let target = routes.address_for(batch[0].task_id);
        sent += batch.len() as u64;
        fabric
            .send(
                endpoints[0].address(),
                target,
                encode_to_bytes(&SchedWire::SpillBatch(batch)),
            )
            .unwrap();
        // Barrier: this group fully placed before the next is sent.
        let deadline = Instant::now() + Duration::from_secs(5);
        while placed.len() < sent as usize {
            assert!(
                Instant::now() < deadline,
                "placed {}/{sent} tasks (K={shards})",
                placed.len(),
            );
            for (idx, endpoint) in endpoints.iter().enumerate() {
                while let Ok(d) = endpoint.receiver().try_recv() {
                    match decode_from_slice::<SchedWire>(&d.payload) {
                        Ok(SchedWire::Place { spec, .. }) => {
                            placed.insert(spec.task_id, NodeId(nodes[idx].0));
                        }
                        Ok(SchedWire::PlaceBatch { specs, .. }) => {
                            for spec in specs {
                                placed.insert(spec.task_id, NodeId(nodes[idx].0));
                            }
                        }
                        _ => {}
                    }
                }
            }
            std::thread::yield_now();
        }
    }
    handle.shutdown();
    placed
}

proptest! {
    // Each case spawns 15 shard threads across four schedulers; trim
    // with PROPTEST_CASES if the suite needs to be faster.

    /// A K-shard global scheduler's placement decisions are bit-identical
    /// to the single-scheduler reference for K ∈ {1, 2, 4, 8}: the task
    /// keyspace partition decides *who* places each task, never *where*
    /// it goes, and the load-digest plane keeps a sharded run's view in
    /// lockstep with the single scheduler's placed-since fold.
    #[test]
    fn sharded_placement_is_bit_identical_to_single_reference(
        queues in proptest::collection::vec(0u32..8, 2..5),
        raw_tasks in proptest::collection::vec(0u64..512, 1..24),
    ) {
        let nodes: Vec<(u32, u32)> = queues
            .iter()
            .enumerate()
            .map(|(i, &q)| ((i + 1) as u32, q))
            .collect();
        let mut tasks: Vec<u64> = raw_tasks;
        tasks.sort_unstable();
        tasks.dedup();
        let root = TaskId::driver_root(DriverId::from_index(0));
        for k in [2usize, 4, 8] {
            // Group tasks by their owner under this K; both runs are fed
            // the identical batch sequence.
            let mut groups: Vec<Vec<u64>> = vec![Vec::new(); k];
            for &i in &tasks {
                groups[root.child(i).bucket(k)].push(i);
            }
            let reference = global_placements(1, &nodes, &groups);
            prop_assert_eq!(reference.len(), tasks.len());
            let sharded = global_placements(k, &nodes, &groups);
            prop_assert!(
                sharded == reference,
                "K={} diverged from K=1:\n  sharded:   {:?}\n  reference: {:?}",
                k,
                sharded,
                reference
            );
        }
    }
}
