//! `rtml` — a Rust reproduction of *Real-Time Machine Learning: The
//! Missing Pieces* (HotOS 2017), the vision paper behind Ray.
//!
//! This facade re-exports the whole workspace:
//!
//! - [`runtime`] — the execution framework: clusters, drivers, typed
//!   futures (`submit`/`get`/`wait`/`put`), lineage fault tolerance,
//!   actors, profiling.
//! - [`kv`] — the sharded control plane (object/task/function tables,
//!   event logs, pub-sub).
//! - [`store`] — per-node object stores and cross-node transfer.
//! - [`sched`] — the hybrid local/global scheduler.
//! - [`net`] — the simulated network fabric.
//! - [`baselines`] — serial and BSP (Spark-model) comparator engines.
//! - [`workloads`] — the paper's workloads: Atari-style RL, MCTS, RNN
//!   grids, sensor fusion.
//! - [`common`] — identifiers, codec, resources, metrics.
//!
//! # Quickstart
//!
//! ```
//! use rtml::prelude::*;
//!
//! let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
//! let double = cluster.register_fn1("double", |x: i64| Ok(x * 2));
//! let driver = cluster.driver();
//!
//! // Futures compose into DAGs: values and futures mix as arguments.
//! let a = driver.submit1(&double, 21).unwrap();
//! let b = driver.submit1(&double, &a).unwrap();
//! assert_eq!(driver.get(&b).unwrap(), 84);
//! cluster.shutdown();
//! ```

pub use rtml_baselines as baselines;
pub use rtml_common as common;
pub use rtml_kv as kv;
pub use rtml_net as net;
pub use rtml_runtime as runtime;
pub use rtml_sched as sched;
pub use rtml_store as store;
pub use rtml_workloads as workloads;

/// The types most programs need.
pub mod prelude {
    pub use rtml_common::error::{Error, Result};
    pub use rtml_common::ids::{NodeId, ObjectId, TaskId, WorkerId};
    pub use rtml_common::resources::Resources;
    pub use rtml_common::retry::RetryPolicy;
    pub use rtml_net::{FaultPlan, FaultWindow, LatencyModel, LinkFault, LinkMatch, WindowFault};
    pub use rtml_runtime::{
        Cluster, ClusterConfig, Driver, IntoArg, NodeConfig, ObjectRef, TaskContext, TaskOptions,
        TelemetryConfig,
    };
    pub use rtml_sched::{PlacementPolicy, SpillMode, StealConfig};
    pub use rtml_store::ReplicationPolicy;
}
