//! Quickstart: the paper's API in five minutes.
//!
//! Demonstrates the §3.1 programming model: non-blocking task creation,
//! futures as arguments (dataflow DAGs), nested task creation, `get`,
//! and `wait`.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use rtml::prelude::*;

fn main() -> Result<()> {
    // A 2-node cluster with 4 workers each, 100 µs simulated cross-node
    // latency, hybrid scheduling — Figure 3 in one call.
    let cluster = Cluster::start(ClusterConfig::local(2, 4)).unwrap();

    // 1. Register remote functions (the function table).
    let square = cluster.register_fn1("square", |x: i64| Ok(x * x));
    let add = cluster.register_fn2("add", |a: i64, b: i64| Ok(a + b));
    let slow = cluster.register_fn1("slow", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        Ok(ms)
    });

    let driver = cluster.driver();

    // 2. Task creation is non-blocking: a future comes back immediately.
    let a = driver.submit1(&square, 6)?;
    let b = driver.submit1(&square, 8)?;

    // 3. Futures are arguments: this creates dataflow edges, no get
    //    needed in between.
    let c = driver.submit2(&add, &a, &b)?;

    // 4. get blocks until the value is ready (fetching across nodes if
    //    the task ran elsewhere).
    println!("6² + 8² = {}", driver.get(&c)?);

    // 5. wait returns as soon as enough tasks finished — the primitive
    //    for latency-aware code that tolerates stragglers (R1).
    let quick = driver.submit1(&slow, 10u64)?;
    let straggler = driver.submit1(&slow, 5_000u64)?;
    let (ready, pending) = driver.wait(&[quick, straggler], 1, Duration::from_secs(1));
    println!(
        "wait: {} ready, {} still pending (the straggler did not block us)",
        ready.len(),
        pending.len()
    );

    // put stores a value directly; tasks can consume it by reference.
    let big = driver.put(&vec![1i64; 1024])?;
    let sum = cluster.register_fn1("sum", |v: Vec<i64>| Ok(v.iter().sum::<i64>()));
    let total = driver.submit1(&sum, &big)?;
    println!("sum of 1024 ones = {}", driver.get(&total)?);

    // R7: the event log knows what happened.
    println!("\n--- profile ---\n{}", cluster.profile().summary());

    cluster.shutdown();
    Ok(())
}
