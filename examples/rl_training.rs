//! The paper's §4.2 RL workload: train a policy on an arcade-style
//! simulator, alternating parallel simulation stages with GPU policy
//! stages — the experiment behind the 63x claim.
//!
//! Run with: `cargo run --release --example rl_training`

use std::time::Duration;

use rtml::baselines::{BspConfig, BspEngine};
use rtml::prelude::*;
use rtml::workloads::rl::{self, RlConfig, RlFuncs};

fn main() -> Result<()> {
    let config = RlConfig {
        rollouts: 16,
        frames_per_task: 10,
        frame_cost: Duration::from_micros(700), // ≈ 7 ms per sim task
        iterations: 5,
        ..RlConfig::default()
    };

    println!(
        "RL training: {} iterations x {} rollouts x ~7 ms tasks\n",
        config.iterations, config.rollouts
    );

    // Single-threaded baseline.
    let serial = rl::run_serial(&config);
    println!(
        "serial : {:?}  (checksum {:016x})",
        serial.wall, serial.checksum
    );

    // BSP baseline with Spark-like per-task driver overhead.
    let bsp_engine = BspEngine::new(BspConfig::spark_calibrated(8));
    let bsp = rl::run_engine(&config, &bsp_engine);
    println!(
        "bsp    : {:?}  ({:.2}x vs serial; checksum {:016x})",
        bsp.wall,
        serial.wall.as_secs_f64() / bsp.wall.as_secs_f64(),
        bsp.checksum
    );

    // rtml: one GPU node, sims spread across CPU workers, the policy
    // future chains between iterations.
    let cluster = Cluster::start(ClusterConfig {
        nodes: vec![
            NodeConfig::cpu_only(8).with_gpus(1.0),
            NodeConfig::cpu_only(8),
        ],
        ..ClusterConfig::default()
    })
    .unwrap();
    let funcs = RlFuncs::register(&cluster);
    let driver = cluster.driver();
    let rtml = rl::run_rtml(&config, &driver, &funcs, true)?;
    println!(
        "rtml   : {:?}  ({:.2}x vs serial; checksum {:016x})",
        rtml.wall,
        serial.wall.as_secs_f64() / rtml.wall.as_secs_f64(),
        rtml.checksum
    );

    assert_eq!(serial.checksum, bsp.checksum, "engines must agree");
    assert_eq!(serial.checksum, rtml.checksum, "engines must agree");
    println!(
        "\nrtml vs bsp: {:.0}x end-to-end (paper reports 63x vs Spark)",
        bsp.wall.as_secs_f64() / rtml.wall.as_secs_f64()
    );

    cluster.shutdown();
    Ok(())
}
