//! Transparent fault tolerance via lineage replay (R6, paper §3.2.1).
//!
//! Kills a worker mid-task and then an entire node (losing every object
//! it held), and shows the driver still getting every answer — the
//! control plane replays the lost computation from the durable task
//! table.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use std::time::Duration;

use rtml::common::task::TaskState;
use rtml::prelude::*;

fn main() -> Result<()> {
    let cluster = Cluster::start(ClusterConfig::local(2, 2)).unwrap();
    let crunch = cluster.register_fn1("crunch", |x: i64| {
        std::thread::sleep(Duration::from_millis(200));
        Ok(x * 1000)
    });
    let driver = cluster.driver();

    // --- Kill a worker mid-task -------------------------------------
    let fut = driver.submit1(&crunch, 7)?;
    std::thread::sleep(Duration::from_millis(50)); // let it start
    let running: Vec<WorkerId> = driver
        .services()
        .tasks
        .scan_states()
        .into_iter()
        .filter_map(|(_, state)| match state {
            TaskState::Running(worker) => Some(worker),
            _ => None,
        })
        .collect();
    if let Some(worker) = running.first() {
        println!("killing worker {worker} mid-task...");
        cluster.kill_worker(*worker).unwrap();
    }
    println!("get() after worker kill: {}", driver.get(&fut)?);

    // --- Kill a whole node ------------------------------------------
    // Materialize results, then destroy a node's store.
    let futs: Vec<ObjectRef<i64>> = (0..8)
        .map(|i| driver.submit1(&crunch, i).unwrap())
        .collect();
    for fut in &futs {
        driver.get(fut)?;
    }
    println!("killing node N1 (its object store vanishes)...");
    cluster.kill_node(NodeId(1)).unwrap();

    // Every object is still retrievable: local copies or lineage replay.
    let mut recovered = 0;
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(driver.get(fut)?, i as i64 * 1000);
        recovered += 1;
    }
    println!("all {recovered} results recovered after node loss");
    println!(
        "lineage reconstructions performed: {}",
        cluster.reconstructions()
    );

    // Restart the node: stateless components rejoin (paper's recovery).
    cluster
        .restart_node(NodeId(1), NodeConfig::cpu_only(2))
        .unwrap();
    println!(
        "node N1 restarted; alive nodes: {:?}",
        cluster.alive_nodes()
    );

    let check = driver.submit1(&crunch, 42)?;
    println!("post-restart sanity: {}", driver.get(&check)?);

    cluster.shutdown();
    Ok(())
}
