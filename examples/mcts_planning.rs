//! Online planning with Monte Carlo tree search (paper Figure 2b).
//!
//! The task graph is built *dynamically*: which simulation runs next
//! depends on the values earlier simulations returned. Compare the
//! sequential planner against the parallel one driven by `wait`.
//!
//! Run with: `cargo run --release --example mcts_planning`

use std::time::Duration;

use rtml::prelude::*;
use rtml::workloads::mcts::{self, MctsConfig, MctsFuncs};

fn main() -> Result<()> {
    let config = MctsConfig {
        actions: 4,
        rollout_frames: 8,
        frame_cost: Duration::from_micros(700), // ≈ 5.6 ms per rollout task
        budget: 96,
        parallelism: 8,
        ..MctsConfig::default()
    };

    println!(
        "planning with {} simulations of ~{:?} each...",
        config.budget,
        config.frame_cost * config.rollout_frames
    );

    // Sequential planner.
    let serial = mcts::run_serial(&config);
    println!(
        "serial:   action {} | tree {} nodes | {:?}",
        serial.best_action, serial.tree_size, serial.wall
    );

    // Parallel planner on a 2-node cluster: simulations fan out as
    // tasks, results arrive in completion order, and each completion
    // immediately steers the next expansion (R3).
    let cluster = Cluster::start(ClusterConfig::local(2, 4)).unwrap();
    let funcs = MctsFuncs::register(&cluster);
    let driver = cluster.driver();
    let parallel = mcts::run_rtml(&config, &driver, &funcs)?;
    println!(
        "parallel: action {} | tree {} nodes | {:?}  ({:.1}x speedup)",
        parallel.best_action,
        parallel.tree_size,
        parallel.wall,
        serial.wall.as_secs_f64() / parallel.wall.as_secs_f64()
    );

    cluster.shutdown();
    Ok(())
}
