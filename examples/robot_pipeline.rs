//! The paper's §2 motivating example, end to end: a robot fusing
//! heterogeneous sensor streams (Figure 2a) while planning actions with
//! an RNN policy over fine-grained dataflow (Figure 2c).
//!
//! Run with: `cargo run --release --example robot_pipeline`

use std::time::Duration;

use rtml::baselines::SerialEngine;
use rtml::prelude::*;
use rtml::workloads::rnn::{self, RnnConfig, RnnFuncs};
use rtml::workloads::sensors::{self, SensorConfig, SensorFuncs};

fn main() -> Result<()> {
    let cluster = Cluster::start(ClusterConfig::local(3, 4)).unwrap();
    let driver = cluster.driver();

    // --- Figure 2a: streaming sensor fusion -------------------------
    let sensor_config = SensorConfig {
        sensors: 6, // video, lidar, radar, imu, gps, audio
        base_cost: Duration::from_millis(1),
        windows: 10,
        ..SensorConfig::default()
    };
    let sensor_funcs = SensorFuncs::register(&cluster, sensor_config.fuse_cost);

    let bsp = sensors::run_bsp(&sensor_config, &SerialEngine);
    let streamed = sensors::run_rtml(&sensor_config, &driver, &sensor_funcs)?;
    assert_eq!(bsp.checksum, streamed.checksum, "fusion must be exact");
    println!("sensor fusion over {} windows:", sensor_config.windows);
    println!(
        "  serial batch : mean window latency {:?}, total {:?}",
        bsp.mean_latency(),
        bsp.wall
    );
    println!(
        "  rtml stream  : mean window latency {:?}, total {:?}",
        streamed.mean_latency(),
        streamed.wall
    );

    // --- Figure 2c: the RNN policy as a fine-grained task graph -----
    let rnn_config = RnnConfig {
        layers: 4,
        timesteps: 10,
        base_cell_cost: Duration::from_millis(2),
        cost_spread: 0.75, // deeper layers cost up to 3.25x more (R4)
        ..RnnConfig::default()
    };
    let rnn_funcs = RnnFuncs::register(&cluster);

    let serial = rnn::run_serial(&rnn_config);
    let dataflow = rnn::run_rtml(&rnn_config, &driver, &rnn_funcs)?;
    assert_eq!(serial.checksum, dataflow.checksum, "RNN must be exact");
    println!(
        "\nRNN policy ({} layers x {} steps, heterogeneous cells):",
        rnn_config.layers, rnn_config.timesteps
    );
    println!("  serial   : {:?}", serial.wall);
    println!(
        "  dataflow : {:?}  ({:.1}x)",
        dataflow.wall,
        serial.wall.as_secs_f64() / dataflow.wall.as_secs_f64()
    );

    println!("\n--- profile ---\n{}", cluster.profile().summary());
    cluster.shutdown();
    Ok(())
}
