//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness (see `vendor/README.md`).
//!
//! Implements the subset the workspace's benches use: benchmark groups with
//! `sample_size` / `measurement_time` / `warm_up_time` / `throughput`
//! configuration, `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! straightforward warm-up pass followed by timed samples; results print
//! mean and min/max per benchmark. There is no statistical regression
//! analysis, HTML report, or command-line filtering.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group, reported alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id; lets `bench_function` accept
/// both string names and [`BenchmarkId`]s, as in real criterion.
pub trait IntoBenchmarkId {
    /// The `group/name` string used in reports.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    config: Config,
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Bencher {
    /// Runs `routine` repeatedly: a warm-up phase, then timed samples until
    /// either `sample_size` samples are collected or the measurement-time
    /// budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        // Warm-up: also estimates the per-iteration cost so each timed
        // sample can batch enough iterations to out-resolve the clock.
        let mut warm_iters: u32 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        let batch = if per_iter < Duration::from_micros(5) {
            (Duration::from_micros(50).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u32
        } else {
            1
        };

        let budget_deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
            if Instant::now() >= budget_deadline {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            config: self.config,
        };
        f(&mut bencher);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            config: self.config,
        };
        f(&mut bencher, input);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id:<28} (no samples)", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        let mut line = format!(
            "{}/{id:<28} time: [{} {} {}]",
            self.name,
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  thrpt: {:.1} MiB/s",
                        per_sec(n) / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group. (Reports are printed as benchmarks run.)
    pub fn finish(self) {}
}

/// Formats a duration with an auto-selected unit, criterion-style.
fn fmt_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// No-op for CLI compatibility with real criterion.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            config: Config::default(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Criterion {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group declared with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}
