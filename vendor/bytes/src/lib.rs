//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of the crates it depends on (see
//! `vendor/README.md`). This crate provides [`Bytes`]: a cheaply cloneable,
//! immutable, contiguous byte buffer. Cloning is a reference-count bump, so
//! handing a sealed object to another worker never copies the payload —
//! exactly the property the object store relies on.
//!
//! Only the surface the workspace uses is implemented: construction
//! (`new` / `from_static` / `copy_from_slice` / `From` impls), `Deref` to
//! `[u8]`, and the comparison/hashing traits needed to key maps by `Bytes`.
//! `BytesMut`, `Buf`, and `BufMut` are intentionally absent.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
///
/// Static slices are stored without allocation; owned data is shared behind
/// an [`Arc`], so `clone` is O(1) and never copies the payload.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

/// Payloads at or below this size are stored inline (no heap, no
/// refcount). Control-plane keys and most record values (task states,
/// object infos, events) fit, which makes their construction and clone
/// allocation-free on the submission hot path.
const INLINE_CAP: usize = 24;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// Small-buffer optimization: length + bytes on the stack.
    Inline(u8, [u8; INLINE_CAP]),
    // `Arc<Vec<u8>>` rather than `Arc<[u8]>`: `From<Vec<u8>>` is the
    // hot constructor (every codec encode and KV key build), and
    // `Arc<[u8]>::from` would re-copy the payload into the Arc
    // allocation. Moving the Vec keeps construction at one small
    // allocation, at the price of one extra pointer hop on reads.
    // The `(offset, len)` window supports zero-copy sub-slicing
    // ([`Bytes::slice`]): a record carved out of a batch-encoded arena
    // shares the arena's buffer instead of owning a copy.
    Shared(Arc<Vec<u8>>, usize, usize),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    fn inline(data: &[u8]) -> Bytes {
        debug_assert!(data.len() <= INLINE_CAP);
        let mut buf = [0u8; INLINE_CAP];
        buf[..data.len()].copy_from_slice(data);
        Bytes {
            repr: Repr::Inline(data.len() as u8, buf),
        }
    }

    /// Copies `data` into a new buffer (inline when it fits).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        if data.len() <= INLINE_CAP {
            Bytes::inline(data)
        } else {
            Bytes {
                repr: Repr::Shared(Arc::new(data.to_vec()), 0, data.len()),
            }
        }
    }

    /// Returns a view of `range` within the buffer **without copying**
    /// when the payload is heap-backed: the returned `Bytes` shares the
    /// same reference-counted buffer with a narrowed window. Ranges that
    /// fit the inline cap are re-inlined (still no heap allocation).
    ///
    /// This is what makes arena encoding zero-copy: a whole batch is
    /// encoded into one buffer, and each record is a `slice` of it.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or decreasing, like slice
    /// indexing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        let len = range.end - range.start;
        assert!(range.end <= self.len(), "slice out of bounds");
        if len <= INLINE_CAP {
            return Bytes::inline(&self.as_slice()[range]);
        }
        match &self.repr {
            Repr::Static(s) => Bytes {
                repr: Repr::Static(&s[range]),
            },
            // Unreachable in practice (inline payloads are <= INLINE_CAP,
            // so every sub-range re-inlines above), but kept total.
            Repr::Inline(_, _) => Bytes::copy_from_slice(&self.as_slice()[range]),
            Repr::Shared(buf, offset, _) => Bytes {
                repr: Repr::Shared(buf.clone(), offset + range.start, len),
            },
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Inline(len, buf) => &buf[..*len as usize],
            Repr::Shared(s, offset, len) => &s[*offset..*offset + *len],
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.len() <= INLINE_CAP {
            Bytes::inline(&v)
        } else {
            let len = v.len();
            Bytes {
                repr: Repr::Shared(Arc::new(v), 0, len),
            }
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        // `Vec::from(Box<[u8]>)` reuses the allocation; no copy.
        Bytes::from(Vec::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Bytes {
        Bytes::copy_from_slice(&a)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

// Hashes as a plain byte slice so `HashMap<Bytes, _>` lookups can go
// through `Borrow<[u8]>` with a consistent hash.
impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b == b'"' || b == b'\\' {
                write!(f, "\\{}", b as char)?;
            } else if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        // Above the inline threshold: clones must share the heap buffer.
        let a = Bytes::from(vec![7u8; INLINE_CAP + 1]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn small_payloads_are_inline() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        assert!(matches!(a.repr, Repr::Inline(3, _)));
        assert_eq!(a, b"\x01\x02\x03"[..]);
        let exact = Bytes::from(vec![9u8; INLINE_CAP]);
        assert!(matches!(exact.repr, Repr::Inline(_, _)));
        assert_eq!(exact.len(), INLINE_CAP);
        let big = Bytes::copy_from_slice(&[1u8; INLINE_CAP + 1]);
        assert!(matches!(big.repr, Repr::Shared(..)));
    }

    #[test]
    fn slice_shares_storage_for_large_windows() {
        let backing: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let arena = Bytes::from(backing.clone());
        let window = arena.slice(100..1100);
        assert_eq!(window.as_slice(), &backing[100..1100]);
        // Zero-copy: the window points into the arena's buffer.
        assert_eq!(window.as_slice().as_ptr(), arena.as_slice()[100..].as_ptr());
        // A slice of a slice re-bases into the same buffer.
        let nested = window.slice(50..950);
        assert_eq!(nested.as_slice(), &backing[150..1050]);
        assert_eq!(nested.as_slice().as_ptr(), arena.as_slice()[150..].as_ptr());
        // Small windows re-inline (no refcount held on the arena).
        let small = arena.slice(10..20);
        assert!(matches!(small.repr, Repr::Inline(10, _)));
        assert_eq!(small.as_slice(), &backing[10..20]);
        // Full and empty ranges behave like slice indexing.
        assert_eq!(arena.slice(0..4096), arena);
        assert!(arena.slice(7..7).is_empty());
    }

    #[test]
    fn slice_of_static_stays_static() {
        static DATA: [u8; 64] = [7u8; 64];
        let s = Bytes::from_static(&DATA);
        let w = s.slice(0..40);
        assert!(matches!(w.repr, Repr::Static(_)));
        assert_eq!(w.len(), 40);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0u8; 32]);
        let _ = b.slice(0..33);
    }

    #[test]
    fn static_does_not_allocate_and_compares() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(s, b"hello"[..]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn map_lookup_via_borrow() {
        let mut map = std::collections::HashMap::new();
        map.insert(Bytes::from(vec![9u8, 9]), 42);
        assert_eq!(map.get(&[9u8, 9][..]), Some(&42));
    }

    #[test]
    fn from_array_and_string() {
        assert_eq!(Bytes::from(7u64.to_le_bytes()).len(), 8);
        assert_eq!(Bytes::from(String::from("ab")), b"ab"[..]);
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
