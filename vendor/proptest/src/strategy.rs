//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    // Bias toward boundary values occasionally; they are
                    // where most arithmetic and codec bugs live.
                    if rng.one_in(16) {
                        match rng.below(3) {
                            0 => 0 as $ty,
                            1 => <$ty>::MAX,
                            _ => <$ty>::MIN,
                        }
                    } else {
                        rng.next_u64() as $ty
                    }
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        if rng.one_in(16) {
            match rng.below(3) {
                0 => 0,
                1 => u128::MAX,
                _ => u64::MAX as u128,
            }
        } else {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 0
    }
}

// Floats generate from raw bits, so NaNs, infinities, and subnormals all
// occur — bitwise round-trip properties need them.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy_int {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    if rng.one_in(16) {
                        if rng.below(2) == 0 { self.start } else { self.end - 1 }
                    } else {
                        self.start + rng.below(span) as $ty
                    }
                }
            }
        )+
    };
}

range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($(($ty:ty, $uty:ty)),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    // Two's-complement span: exact even for the full-width
                    // range (e.g. i64::MIN..i64::MAX), where a signed
                    // subtraction would overflow.
                    let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                    if rng.one_in(16) {
                        if rng.below(2) == 0 { self.start } else { self.end - 1 }
                    } else {
                        let offset = rng.below(span) as $uty;
                        (self.start as $uty).wrapping_add(offset) as $ty
                    }
                }
            }
        )+
    };
}

range_strategy_signed!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

macro_rules! range_strategy_float {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    if rng.one_in(16) {
                        self.start
                    } else {
                        self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                    }
                }
            }
        )+
    };
}

range_strategy_float!(f32, f64);

/// String strategy from a pattern literal. Real proptest compiles the full
/// regex; this stand-in supports the `.{lo,hi}` shape (a string of `lo..=hi`
/// arbitrary non-newline chars). Any other pattern produces a short
/// arbitrary string, which keeps unknown patterns sound if over-broad.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}

/// Parses `".{lo,hi}"`, the one regex shape the workspace uses.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// An arbitrary non-newline char: mostly printable ASCII, with a tail of
/// multi-byte code points to exercise UTF-8 handling.
fn arbitrary_char(rng: &mut TestRng) -> char {
    if rng.one_in(4) {
        // Any valid scalar value except surrogates and newline.
        loop {
            let c = rng.below(0x11_0000) as u32;
            if let Some(c) = char::from_u32(c) {
                if c != '\n' {
                    return c;
                }
            }
        }
    } else {
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

/// Strategy for `Vec`s; see [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::generate(&self.len, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `Option`s; see [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.one_in(5) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);
