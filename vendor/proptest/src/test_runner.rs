//! Deterministic case runner and RNG.

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's precondition (`prop_assume!`) did not hold; try another.
    Reject,
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with an explanatory message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError::Fail(message)
    }

    /// A discarded case.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// A small, fast, deterministic RNG (splitmix64). Seeded from the test
/// name so every run regenerates identical cases.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test's name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, mixed so similar names diverge.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: hash ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True one time in `n` (used for edge-case biasing).
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

/// Number of generated cases per property. Overridable via the
/// `PROPTEST_CASES` environment variable, as with real proptest.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: generates cases, applies the body, panics with the
/// case number and message on the first failure. Rejected cases
/// (`prop_assume!`) do not count toward the case total; an excessive
/// rejection rate aborts the test, mirroring real proptest.
pub fn run<F>(name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let total = cases();
    let mut rng = TestRng::for_test(name);
    let mut rejected: u32 = 0;
    let max_rejects = total.saturating_mul(64).max(1024);
    let mut case: u32 = 0;
    while case < total {
        match property(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejected} rejects for {case} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("property failed: {name} (case {case} of {total})\n{message}");
            }
        }
    }
}
