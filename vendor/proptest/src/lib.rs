//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro over `fn name(arg in strategy, ...) { body }`,
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! - strategies: `any::<T>()` for primitive types, integer and float
//!   ranges, tuples, [`collection::vec`], [`option::of`], and simple
//!   `".{lo,hi}"` string patterns.
//!
//! Generation is deterministic: the RNG is seeded from the test's name, so
//! a failure reproduces on every run. There is no shrinking — the failing
//! case is printed as-is — and regex string strategies support only the
//! `.{lo,hi}` shape the workspace uses (anything else falls back to a
//! short arbitrary string).

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Generates `None` roughly one time in five, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs each contained test function against many generated inputs.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
///         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left == *__right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                );
            }
        }
    };
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left != *__right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left
                );
            }
        }
    };
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn u64_roundtrips_through_le_bytes(v in any::<u64>()) {
            prop_assert_eq!(u64::from_le_bytes(v.to_le_bytes()), v);
        }

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_length_bounds(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn full_width_signed_range_does_not_overflow(
            wide in i64::MIN..i64::MAX,
            narrow in -100i8..100,
        ) {
            prop_assert!(wide < i64::MAX);
            prop_assert!((-100..100).contains(&narrow));
        }

        #[test]
        fn assume_discards_cases(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn tuples_and_options_generate(
            pair in (0u8..4, any::<u16>()),
            opt in crate::option::of(1u32..5),
        ) {
            prop_assert!(pair.0 < 4);
            if let Some(x) = opt {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn string_pattern_length_bounds(s in ".{0,16}") {
            prop_assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_test("seed");
        let mut b = TestRng::for_test("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::test_runner::run("always_fails", |rng| {
            let v = crate::strategy::Strategy::generate(&crate::strategy::any::<u64>(), rng);
            let _ = v;
            Err(TestCaseError::fail("forced".to_string()))
        });
    }
}
