//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate (see `vendor/README.md`).
//!
//! Wraps the `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, and [`Condvar::wait`] takes `&mut MutexGuard` rather than
//! consuming the guard. Poisoned locks are recovered transparently — a
//! panicking thread must not wedge every other lock holder, which matches
//! `parking_lot` semantics and is what the fault-injection tests rely on.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` outside of [`Condvar::wait`], which
/// briefly takes the std guard out to re-block on the condition variable.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`] by mutable reference.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified.
    /// Spurious wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
