//! Unbounded MPMC channels with disconnect detection and selection.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message back, matching crossbeam.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Select::select_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectTimeoutError;

impl fmt::Display for SelectTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("selection timed out")
    }
}

impl std::error::Error for SelectTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// A wakeup token shared between a selector and the channels it watches.
/// Sends and disconnects set the flag and notify, so a selector blocked on
/// several channels wakes as soon as any of them has something to report.
pub struct Signal {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Signal {
    fn new() -> Signal {
        Signal {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn notify(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        *flag = true;
        self.cv.notify_all();
    }

    fn clear(&self) {
        *self.flag.lock().unwrap_or_else(PoisonError::into_inner) = false;
    }

    /// Blocks until the flag is set or `deadline` passes (never, if `None`).
    fn wait(&self, deadline: Option<Instant>) {
        let mut flag = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*flag {
            match deadline {
                None => {
                    flag = self.cv.wait(flag).unwrap_or_else(PoisonError::into_inner);
                }
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return;
                    }
                    flag = self
                        .cv
                        .wait_timeout(flag, dl - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    /// Signals of selectors currently parked on this channel.
    watchers: Mutex<Vec<Arc<Signal>>>,
}

impl<T> Chan<T> {
    fn notify_watchers(&self) {
        let watchers = self.watchers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in watchers.iter() {
            w.notify();
        }
    }
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of an unbounded channel. Cloneable.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cv: Condvar::new(),
        watchers: Mutex::new(Vec::new()),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message, failing if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            self.chan.cv.notify_one();
        }
        self.chan.notify_watchers();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            st.senders == 0
        };
        if last {
            // Disconnect: wake everything so blocked receivers see it.
            self.chan.cv.notify_all();
            self.chan.notify_watchers();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Receiver::recv`], but gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            st = self
                .chan
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Pops a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(msg) = st.queue.pop_front() {
            Ok(msg)
        } else if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator over received messages; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator draining currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking message iterator; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Non-blocking draining iterator; see [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// A channel endpoint that a selector can park on: readiness is "a message
/// is queued or the channel is disconnected".
pub trait SelectTarget {
    /// Whether a `recv` on this channel would complete without blocking.
    fn ready(&self) -> bool;
    /// Registers a selector's wakeup signal.
    fn watch(&self, signal: &Arc<Signal>);
    /// Removes a previously registered signal.
    fn unwatch(&self, signal: &Arc<Signal>);
}

impl<T> SelectTarget for Receiver<T> {
    fn ready(&self) -> bool {
        let st = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        !st.queue.is_empty() || st.senders == 0
    }

    fn watch(&self, signal: &Arc<Signal>) {
        self.chan
            .watchers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(signal));
    }

    fn unwatch(&self, signal: &Arc<Signal>) {
        self.chan
            .watchers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|w| !Arc::ptr_eq(w, signal));
    }
}

/// Blocks until one of `targets` is ready, returning its index, or `None`
/// if `timeout` elapses first. With `timeout == None`, blocks indefinitely.
///
/// This is the engine behind both [`select!`] and [`Select`]. Readiness is
/// level-triggered: registration happens before the first readiness sweep,
/// so a send racing with registration cannot be lost.
pub fn select_ready(targets: &[&dyn SelectTarget], timeout: Option<Duration>) -> Option<usize> {
    let deadline = timeout.map(|t| Instant::now() + t);
    // Fast path: something is already ready.
    for (i, t) in targets.iter().enumerate() {
        if t.ready() {
            return Some(i);
        }
    }
    let signal = Arc::new(Signal::new());
    for t in targets {
        t.watch(&signal);
    }
    let result = loop {
        signal.clear();
        let mut found = None;
        for (i, t) in targets.iter().enumerate() {
            if t.ready() {
                found = Some(i);
                break;
            }
        }
        if found.is_some() {
            break found;
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                break None;
            }
        }
        signal.wait(deadline);
    };
    for t in targets {
        t.unwatch(&signal);
    }
    result
}

/// Dynamically-built selection over a runtime-known set of receivers.
pub struct Select<'a> {
    targets: Vec<&'a dyn SelectTarget>,
}

impl<'a> Select<'a> {
    /// Creates an empty selection set.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Select<'a> {
        Select {
            targets: Vec::new(),
        }
    }

    /// Adds a receive operation, returning its index.
    pub fn recv<T>(&mut self, receiver: &'a Receiver<T>) -> usize {
        self.targets.push(receiver);
        self.targets.len() - 1
    }

    /// Blocks until an operation is ready.
    pub fn select(&mut self) -> SelectedOperation<'a> {
        let index = select_ready(&self.targets, None).expect("untimed select always resolves");
        SelectedOperation {
            index,
            _marker: std::marker::PhantomData,
        }
    }

    /// Blocks until an operation is ready or `timeout` elapses.
    pub fn select_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<SelectedOperation<'a>, SelectTimeoutError> {
        match select_ready(&self.targets, Some(timeout)) {
            Some(index) => Ok(SelectedOperation {
                index,
                _marker: std::marker::PhantomData,
            }),
            None => Err(SelectTimeoutError),
        }
    }
}

/// A ready operation produced by [`Select`]; complete it with
/// [`SelectedOperation::recv`].
pub struct SelectedOperation<'a> {
    index: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl SelectedOperation<'_> {
    /// Index of the ready operation, in registration order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the operation by receiving from `receiver`.
    ///
    /// Deviation from crossbeam: if another consumer drained the message
    /// between readiness and this call (possible only with cloned
    /// receivers), the lost race is reported as `Err(RecvError)` rather
    /// than retried — indistinguishable from a disconnect. Callers that
    /// share receivers across consumers and need to tell the two apart
    /// should re-check with [`Receiver::try_recv`].
    pub fn recv<T>(self, receiver: &Receiver<T>) -> Result<T, RecvError> {
        match receiver.try_recv() {
            Ok(msg) => Ok(msg),
            Err(TryRecvError::Disconnected) | Err(TryRecvError::Empty) => Err(RecvError),
        }
    }
}

/// Blocking `recv` used by the [`select!`] macro once a channel has been
/// chosen and there is no `default` arm. Level-triggered readiness plus a
/// blocking recv matches crossbeam's committed operation for the
/// single-consumer case; with cloned receivers a lost race blocks here
/// until the next message or disconnect, which an untimed `select!`
/// permits (the caller opted into unbounded blocking).
#[doc(hidden)]
pub fn select_recv<T>(receiver: &Receiver<T>) -> Result<T, RecvError> {
    receiver.recv()
}

/// Deadline-bounded `recv` used by the [`select!`] macro when a
/// `default(timeout)` arm exists: if another consumer stole the message
/// that made the channel look ready, this returns `None` at the deadline
/// so the macro can still fire the `default` arm instead of blocking past
/// the caller's timeout.
#[doc(hidden)]
pub fn select_recv_until<T>(
    receiver: &Receiver<T>,
    deadline: Instant,
) -> Option<Result<T, RecvError>> {
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now) else {
            return match receiver.try_recv() {
                Ok(msg) => Some(Ok(msg)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            };
        };
        match receiver.recv_timeout(remaining) {
            Ok(msg) => return Some(Ok(msg)),
            Err(RecvTimeoutError::Disconnected) => return Some(Err(RecvError)),
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Selects over a fixed set of `recv` operations, with an optional
/// `default(timeout)` arm, mirroring `crossbeam::channel::select!`.
///
/// Supported grammar (1–4 receive arms):
///
/// ```ignore
/// select! {
///     recv(rx_a) -> msg => expr_a,
///     recv(rx_b) -> msg => expr_b,
///     default(Duration::from_millis(5)) => expr_c,
/// }
/// ```
#[macro_export]
macro_rules! select {
    ($($tokens:tt)*) => {
        $crate::select_parse!(@acc [] $($tokens)*)
    };
}

/// Implementation detail of [`select!`]; do not invoke directly.
///
/// Token-muncher that normalizes crossbeam's match-like arm grammar (block
/// bodies may omit the separating comma) into `(rx, pat, body)` groups,
/// then dispatches by arm count.
#[doc(hidden)]
#[macro_export]
macro_rules! select_parse {
    // Terminal: all arms consumed, no default arm.
    (@acc [$($arms:tt)*]) => {
        $crate::select_expand!((none) $($arms)*)
    };
    // Terminal: trailing default(timeout) arm (block or expression body).
    (@acc [$($arms:tt)*] default($timeout:expr) => $dbody:block $(,)?) => {
        $crate::select_expand!((some $timeout, $dbody) $($arms)*)
    };
    (@acc [$($arms:tt)*] default($timeout:expr) => $dbody:expr $(,)?) => {
        $crate::select_expand!((some $timeout, $dbody) $($arms)*)
    };
    // recv arm with block body; the comma is optional, match-style.
    (@acc [$($arms:tt)*] recv($rx:expr) -> $pat:pat => $body:block $($rest:tt)*) => {
        $crate::select_parse!(@acc [$($arms)* ($rx, $pat, $body)] $($rest)*)
    };
    // recv arm with expression body and trailing comma.
    (@acc [$($arms:tt)*] recv($rx:expr) -> $pat:pat => $body:expr, $($rest:tt)*) => {
        $crate::select_parse!(@acc [$($arms)* ($rx, $pat, $body)] $($rest)*)
    };
    // Final recv arm with expression body and no trailing comma.
    (@acc [$($arms:tt)*] recv($rx:expr) -> $pat:pat => $body:expr) => {
        $crate::select_parse!(@acc [$($arms)* ($rx, $pat, $body)])
    };
    // Comma after a block-bodied arm.
    (@acc [$($arms:tt)*] , $($rest:tt)*) => {
        $crate::select_parse!(@acc [$($arms)*] $($rest)*)
    };
}

/// Implementation detail of [`select!`]; do not invoke directly.
///
/// The readiness wait happens inside [`select_ready`], which contains no
/// user code, and arm bodies expand inline — so a `break` / `continue` /
/// `return` inside an arm targets the caller's own enclosing construct,
/// exactly as with crossbeam's macro.
#[doc(hidden)]
#[macro_export]
macro_rules! select_expand {
    // ---- one arm -------------------------------------------------------
    ($mode:tt ($rx0:expr, $pat0:pat, $body0:tt)) => {
        $crate::select_emit! {
            $mode
            [($rx0, $pat0, $body0, __sel_rx0, 0usize)]
        }
    };
    // ---- two arms ------------------------------------------------------
    ($mode:tt ($rx0:expr, $pat0:pat, $body0:tt) ($rx1:expr, $pat1:pat, $body1:tt)) => {
        $crate::select_emit! {
            $mode
            [($rx0, $pat0, $body0, __sel_rx0, 0usize)
             ($rx1, $pat1, $body1, __sel_rx1, 1usize)]
        }
    };
    // ---- three arms ----------------------------------------------------
    ($mode:tt ($rx0:expr, $pat0:pat, $body0:tt) ($rx1:expr, $pat1:pat, $body1:tt)
              ($rx2:expr, $pat2:pat, $body2:tt)) => {
        $crate::select_emit! {
            $mode
            [($rx0, $pat0, $body0, __sel_rx0, 0usize)
             ($rx1, $pat1, $body1, __sel_rx1, 1usize)
             ($rx2, $pat2, $body2, __sel_rx2, 2usize)]
        }
    };
    // ---- four arms -----------------------------------------------------
    ($mode:tt ($rx0:expr, $pat0:pat, $body0:tt) ($rx1:expr, $pat1:pat, $body1:tt)
              ($rx2:expr, $pat2:pat, $body2:tt) ($rx3:expr, $pat3:pat, $body3:tt)) => {
        $crate::select_emit! {
            $mode
            [($rx0, $pat0, $body0, __sel_rx0, 0usize)
             ($rx1, $pat1, $body1, __sel_rx1, 1usize)
             ($rx2, $pat2, $body2, __sel_rx2, 2usize)
             ($rx3, $pat3, $body3, __sel_rx3, 3usize)]
        }
    };
}

/// Implementation detail of [`select!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! select_emit {
    ((none) [$(($rx:expr, $pat:pat, $body:tt, $name:ident, $idx:expr))+]) => {{
        // The annotation deref-coerces, so `recv(...)` accepts both
        // `Receiver<T>` and `&Receiver<T>` operands.
        $(let $name: &$crate::channel::Receiver<_> = &$rx;)+
        let __sel_idx = $crate::channel::select_ready(
            &[$($name as &dyn $crate::channel::SelectTarget),+],
            ::core::option::Option::None,
        ).expect("untimed select always resolves");
        match __sel_idx {
            $($idx => {
                let $pat = $crate::channel::select_recv($name);
                $body
            })+
            _ => ::core::unreachable!("select index out of range"),
        }
    }};
    ((some $timeout:expr, $dbody:tt) [$(($rx:expr, $pat:pat, $body:tt, $name:ident, $idx:expr))+]) => {{
        $(let $name: &$crate::channel::Receiver<_> = &$rx;)+
        let __sel_timeout = $timeout;
        let __sel_deadline = ::std::time::Instant::now() + __sel_timeout;
        let __sel_idx = $crate::channel::select_ready(
            &[$($name as &dyn $crate::channel::SelectTarget),+],
            ::core::option::Option::Some(__sel_timeout),
        );
        match __sel_idx {
            $(::core::option::Option::Some($idx) => {
                // Deadline-bounded: if another consumer stole the message
                // (cloned receivers), fall through to the default arm at
                // the caller's timeout instead of blocking indefinitely.
                match $crate::channel::select_recv_until($name, __sel_deadline) {
                    ::core::option::Option::Some(__sel_res) => {
                        let $pat = __sel_res;
                        $body
                    }
                    ::core::option::Option::None => $dbody,
                }
            })+
            ::core::option::Option::None => $dbody,
            _ => ::core::unreachable!("select index out of range"),
        }
    }};
}

// `crossbeam::channel::select!` must resolve: re-export the crate-root
// macro (where `#[macro_export]` places it) under this module.
pub use crate::select;
