//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate (see `vendor/README.md`).
//!
//! Implements the [`channel`] module surface the workspace uses: unbounded
//! MPMC channels with disconnect detection, `recv_timeout`, the [`select!`]
//! macro, and the dynamic [`channel::Select`] builder. Channels are a
//! `Mutex<VecDeque>` plus condition variable; cross-channel selection works
//! by registering a shared [`channel::Signal`] with every involved channel
//! so a send (or disconnect) on any of them wakes the selector.

pub mod channel;

#[cfg(test)]
mod tests {
    use crate::channel::{unbounded, RecvTimeoutError, Select};
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_when_senders_dropped() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_when_receivers_dropped() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn recv_wakes_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn select_macro_picks_ready_channel() {
        let (tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx1.send(5).unwrap();
        let got = crate::channel::select! {
            recv(rx1) -> msg => msg.unwrap(),
            recv(rx2) -> msg => msg.unwrap() + 100,
        };
        assert_eq!(got, 5);
    }

    #[test]
    fn select_macro_default_fires_on_timeout() {
        let (_tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        let start = Instant::now();
        let got = crate::channel::select! {
            recv(rx1) -> _msg => 1,
            recv(rx2) -> _msg => 2,
            default(Duration::from_millis(20)) => 3,
        };
        assert_eq!(got, 3);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn select_macro_sees_disconnect() {
        let (tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        drop(tx1);
        let got = crate::channel::select! {
            recv(rx1) -> msg => msg.is_err(),
            recv(rx2) -> _msg => false,
        };
        assert!(got);
    }

    #[test]
    fn select_macro_wakes_on_late_send() {
        let (tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx1.send(9).unwrap();
        });
        let got = crate::channel::select! {
            recv(rx1) -> msg => msg.unwrap(),
            recv(rx2) -> _msg => 0,
        };
        assert_eq!(got, 9);
        t.join().unwrap();
    }

    #[test]
    fn dynamic_select_timeout_and_ready() {
        let (tx, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        let mut sel = Select::new();
        sel.recv(&rx1);
        sel.recv(&rx2);
        assert!(sel.select_timeout(Duration::from_millis(10)).is_err());
        tx.send(3).unwrap();
        let op = sel.select_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(op.index(), 0);
        assert_eq!(op.recv(&rx1), Ok(3));
    }

    #[test]
    fn three_way_select_with_default() {
        let (_t1, r1) = unbounded::<u32>();
        let (t2, r2) = unbounded::<u32>();
        let (_t3, r3) = unbounded::<u32>();
        t2.send(2).unwrap();
        let got = crate::channel::select! {
            recv(r1) -> _m => 1,
            recv(r2) -> m => m.unwrap(),
            recv(r3) -> _m => 3,
            default(Duration::from_millis(5)) => 0,
        };
        assert_eq!(got, 2);
    }
}
